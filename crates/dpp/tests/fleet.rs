//! Fleet control-plane integration tests: the union of trainer batches is
//! byte-identical between the direct single service, a fleet of one, a
//! fleet of four, and a fleet of four under kill/partition/rejoin faults —
//! plus the heartbeat edge cases (flap inside the detection window, a beat
//! exactly at the timeout boundary, rebalance racing an in-flight barrier).

use recd_core::DataLoaderConfig;
use recd_datagen::{DatasetGenerator, WorkloadConfig, WorkloadPreset};
use recd_dpp::{
    DppConfig, DppFleet, DppService, FleetConfig, FleetOutput, ShardPolicy, TrainerAssignPolicy,
    TrainerBatch, TrainerHandle,
};
use recd_etl::cluster_by_session;
use recd_reader::{PreprocessPipeline, ReaderConfig};
use recd_storage::{StoredPartition, TableStore, TectonicSim};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Global shard count — more shards than any fleet has hosts, so every host
/// owns several and rebalance has something to steal.
const SHARDS: usize = 6;
const TRAINERS: usize = 3;
/// One stored stripe per batch: every full file fills a batch immediately,
/// so mid-interval emissions (and therefore zombie/replay overlap) happen
/// deterministically.
const BATCH: usize = 16;
/// One continuous-pipeline-style pump tick.
const TICK_MS: u64 = 60_000;

struct Fixture {
    schema: recd_data::Schema,
    store: Arc<TableStore>,
    partitions: Vec<StoredPartition>,
}

fn fixture(intervals: usize) -> Fixture {
    let generator = DatasetGenerator::new(WorkloadConfig::preset(WorkloadPreset::Tiny));
    let partition = generator.generate_partition();
    let samples = cluster_by_session(&partition.samples);
    let store = Arc::new(TableStore::new(TectonicSim::new(4), 16, 1));
    let partitions: Vec<StoredPartition> = (0..intervals)
        .map(|hour| {
            let (stored, _) = store.land_partition(&partition.schema, "t", hour as u64, &samples);
            stored
        })
        .collect();
    // Every shard must see several files per interval, so faults always
    // have in-flight work to replay.
    assert!(
        partitions[0].files.len() >= 2 * SHARDS,
        "fixture must span at least two files per shard per interval"
    );
    Fixture {
        schema: partition.schema,
        store,
        partitions,
    }
}

fn host_config(schema: &recd_data::Schema) -> DppConfig {
    DppConfig::new(ReaderConfig::new(
        BATCH,
        DataLoaderConfig::from_schema(schema),
    ))
    .with_policy(ShardPolicy::FileRoundRobin)
    .with_shards(SHARDS)
    .with_fill_workers(2)
    .with_compute_workers(2)
    .with_pipeline_factory(|| PreprocessPipeline::standard(1 << 20, 64))
}

fn fleet_config(schema: &recd_data::Schema, hosts: usize) -> FleetConfig {
    FleetConfig::new(host_config(schema))
        .with_hosts(hosts)
        .with_trainers(TRAINERS)
        .with_trainer_queue_depth(8)
}

fn spawn_drains(trainers: Vec<TrainerHandle>) -> Vec<std::thread::JoinHandle<Vec<TrainerBatch>>> {
    trainers
        .into_iter()
        .map(|trainer| std::thread::spawn(move || trainer.drain()))
        .collect()
}

fn canonical(drains: Vec<std::thread::JoinHandle<Vec<TrainerBatch>>>) -> Vec<TrainerBatch> {
    let mut batches: Vec<TrainerBatch> = drains
        .into_iter()
        .flat_map(|drain| drain.join().expect("drain thread"))
        .collect();
    batches.sort_by_key(|b| (b.shard, b.seq));
    batches
}

/// The golden baseline: today's single service, same global rotation, same
/// flush points, shard-pinned lanes.
fn run_direct(f: &Fixture) -> Vec<TrainerBatch> {
    let config = host_config(&f.schema)
        .with_trainers(TRAINERS)
        .with_assign_policy(TrainerAssignPolicy::ShardPinned)
        .with_trainer_queue_depth(8);
    let mut handle = DppService::start(config, Arc::clone(&f.store), f.schema.clone());
    let drains = spawn_drains(handle.take_trainers());
    for partition in &f.partitions {
        assert!(handle.ingest_partition(partition));
        assert!(handle.flush_partition());
    }
    handle.finish().expect("clean direct run");
    canonical(drains)
}

/// A fault-free fleet run over the same feed schedule.
fn run_fleet_plain(f: &Fixture, hosts: usize) -> (Vec<TrainerBatch>, FleetOutput) {
    let mut fleet = DppFleet::start(
        fleet_config(&f.schema, hosts),
        Arc::clone(&f.store),
        f.schema.clone(),
    );
    let drains = spawn_drains(fleet.take_trainers());
    let mut now = 0;
    for partition in &f.partitions {
        now += TICK_MS;
        fleet.tick(now);
        assert!(fleet.ingest_partition(partition));
        assert!(fleet.flush_partition());
    }
    let output = fleet.finish();
    (canonical(drains), output)
}

fn assert_union_identical(golden: &[TrainerBatch], other: &[TrainerBatch], label: &str) {
    assert_eq!(golden.len(), other.len(), "{label}: batch count diverged");
    for (g, o) in golden.iter().zip(other) {
        assert_eq!(
            (g.shard, g.seq),
            (o.shard, o.seq),
            "{label}: batch position diverged"
        );
        assert_eq!(
            g.trainer, o.trainer,
            "{label}: lane assignment diverged at shard {} seq {}",
            g.shard, g.seq
        );
        assert_eq!(
            g.batch, o.batch,
            "{label}: batch payload diverged at shard {} seq {}",
            g.shard, g.seq
        );
    }
}

fn assert_zero_drops(output: &FleetOutput, label: &str) {
    for lane in &output.dpp.trainers {
        assert_eq!(
            lane.dropped_batches, 0,
            "{label}: lane {} dropped batches",
            lane.trainer
        );
    }
}

/// Acceptance criterion: M=1 and M=4 fleets reproduce the direct single
/// service byte for byte, batch for batch, lane for lane.
#[test]
fn fleet_union_matches_direct_service_for_one_and_four_hosts() {
    let f = fixture(3);
    let golden = run_direct(&f);
    assert!(!golden.is_empty(), "fixture must produce batches");

    let (m1, out1) = run_fleet_plain(&f, 1);
    assert_union_identical(&golden, &m1, "fleet M=1");
    assert_zero_drops(&out1, "fleet M=1");
    assert!(out1.errors.is_empty(), "M=1 errors: {:?}", out1.errors);
    assert_eq!(out1.report.forwarded_batches as usize, golden.len());
    assert_eq!(out1.report.duplicate_batches_dropped, 0);
    assert_eq!(out1.report.deaths_detected, 0);

    let (m4, out4) = run_fleet_plain(&f, 4);
    assert_union_identical(&golden, &m4, "fleet M=4");
    assert_zero_drops(&out4, "fleet M=4");
    assert!(out4.errors.is_empty(), "M=4 errors: {:?}", out4.errors);
    assert_eq!(out4.report.forwarded_batches as usize, golden.len());
    assert_eq!(out4.report.hosts_live_at_finish, 4);
    assert_eq!(out4.report.barriers, 3);
    assert!(
        out4.report.heartbeats >= 4 * 3,
        "every tick beats every host"
    );
    // The aggregate report counts unique forwarded work.
    assert_eq!(out4.dpp.batches, golden.len());
    assert_eq!(
        out4.dpp.samples as u64,
        golden
            .iter()
            .map(|b| b.batch.batch_size as u64)
            .sum::<u64>()
    );
}

/// Acceptance criterion: kill, long partition (zombie), and rejoin leave the
/// union byte-identical, with full replay/rebalance/heartbeat accounting and
/// zero dropped batches.
#[test]
fn fleet_heals_kill_partition_rejoin_byte_identically() {
    let f = fixture(6);
    let golden = run_direct(&f);

    let mut fleet = DppFleet::start(
        fleet_config(&f.schema, 4),
        Arc::clone(&f.store),
        f.schema.clone(),
    );
    let drains = spawn_drains(fleet.take_trainers());
    let mut now = 0;
    for (interval, partition) in f.partitions.iter().enumerate() {
        now += TICK_MS;
        fleet.tick(now);
        match interval {
            // Killed mid-interval before its files arrive: they queue
            // against the unreachable host and the barrier round replays
            // them to the replacement.
            1 => fleet.kill_host(1),
            // Rejoin before the feed so the rebalance at this interval's
            // barrier can steal shards back onto the fresh host.
            3 => fleet.rejoin_host(1),
            4 => fleet.rejoin_host(2),
            _ => {}
        }
        assert!(fleet.ingest_partition(partition));
        if interval == 2 {
            // Partitioned *after* the feed, longer than the run: the host
            // keeps crunching its in-flight files as a zombie while the
            // barrier declares it dead and replays them elsewhere — the
            // watermark must absorb the overlap.
            fleet.partition_host(2, 100 * TICK_MS);
        }
        assert!(
            fleet.flush_partition(),
            "barrier must survive interval {interval}"
        );
    }
    assert_eq!(fleet.hosts_live(), 4, "everyone rejoined");
    let output = fleet.finish();
    let union = canonical(drains);

    assert_union_identical(&golden, &union, "fleet M=4 faulted");
    assert_zero_drops(&output, "fleet M=4 faulted");
    let report = &output.report;
    assert_eq!(report.kills, 1);
    assert_eq!(report.partitions, 1);
    assert_eq!(report.rejoins, 2);
    assert_eq!(
        report.deaths_detected, 2,
        "one kill + one failed barrier round"
    );
    assert_eq!(report.hosts_live_at_finish, 4);
    assert!(report.replayed_files > 0, "interval files must replay");
    assert!(
        report.shard_replacements >= 2,
        "dead hosts' shards re-place"
    );
    assert!(
        report.rebalance_moves > 0,
        "rejoined hosts steal shards back"
    );
    assert_eq!(report.forwarded_batches as usize, golden.len());
    assert!(
        report.duplicate_batches_dropped > 0,
        "the zombie's full-file emissions must be deduped, not doubled"
    );
    assert_eq!(report.barriers, 6);
}

/// Heartbeat edge case: a host that flaps — partitions and heals within one
/// detection window — is never declared dead; its queued files flush on
/// heal and the union stays byte-identical.
#[test]
fn flapping_host_heals_inside_the_detection_window() {
    let f = fixture(3);
    let golden = run_direct(&f);

    let mut fleet = DppFleet::start(
        fleet_config(&f.schema, 2),
        Arc::clone(&f.store),
        f.schema.clone(),
    );
    let drains = spawn_drains(fleet.take_trainers());

    fleet.tick(TICK_MS);
    assert!(fleet.ingest_partition(&f.partitions[0]));
    assert!(fleet.flush_partition());

    // Partition for half a tick, feed into the outage (files queue), then
    // heal on the next tick — inside the 2-tick detection window.
    fleet.partition_host(1, TICK_MS / 2);
    assert!(fleet.ingest_partition(&f.partitions[1]));
    fleet.tick(2 * TICK_MS);
    assert_eq!(fleet.hosts_live(), 2, "the flap must not be declared dead");
    assert!(fleet.flush_partition());

    fleet.tick(3 * TICK_MS);
    assert!(fleet.ingest_partition(&f.partitions[2]));
    assert!(fleet.flush_partition());

    let output = fleet.finish();
    let union = canonical(drains);
    assert_union_identical(&golden, &union, "flapping fleet");
    assert_zero_drops(&output, "flapping fleet");
    assert_eq!(output.report.flaps, 1);
    assert_eq!(output.report.deaths_detected, 0);
    assert_eq!(output.report.replayed_files, 0, "a flap replays nothing");
    assert_eq!(output.report.duplicate_batches_dropped, 0);
    assert_eq!(output.report.hosts_live_at_finish, 2);
}

/// Heartbeat edge case: a heartbeat exactly at the timeout boundary keeps
/// the host alive — death needs a *strictly* older beat.
#[test]
fn stale_heartbeat_at_exact_timeout_boundary_stays_live() {
    let f = fixture(2);
    let golden = run_direct(&f);
    let timeout = 100_000;

    let mut fleet = DppFleet::start(
        fleet_config(&f.schema, 2).with_heartbeat_timeout_ms(timeout),
        Arc::clone(&f.store),
        f.schema.clone(),
    );
    let drains = spawn_drains(fleet.take_trainers());

    fleet.tick(0);
    assert!(fleet.ingest_partition(&f.partitions[0]));
    assert!(fleet.flush_partition());

    // Host 0 goes dark right after beating at t=0.
    fleet.partition_host(0, 10 * timeout);
    fleet.tick(timeout);
    assert_eq!(
        fleet.hosts_live(),
        2,
        "age == timeout is the boundary: still live"
    );
    assert_eq!(fleet.counters().deaths_detected(), 0);

    fleet.tick(timeout + 1);
    assert_eq!(fleet.hosts_live(), 1, "age > timeout: declared dead");
    assert_eq!(fleet.counters().deaths_detected(), 1);

    // Recover and prove the stream was unharmed.
    fleet.rejoin_host(0);
    assert_eq!(fleet.hosts_live(), 2);
    assert!(fleet.ingest_partition(&f.partitions[1]));
    assert!(fleet.flush_partition());

    let output = fleet.finish();
    let union = canonical(drains);
    assert_union_identical(&golden, &union, "boundary fleet");
    assert_zero_drops(&output, "boundary fleet");
    assert_eq!(output.report.rejoins, 1);
}

/// Heartbeat/rebalance edge case: a controller hammering rebalance requests
/// from another thread while barriers are in flight never corrupts the
/// stream; ownership ends balanced after a death and a rejoin skewed it.
#[test]
fn rebalance_racing_inflight_barriers_stays_consistent() {
    let f = fixture(5);
    let golden = run_direct(&f);

    let mut fleet = DppFleet::start(
        fleet_config(&f.schema, 3).with_rebalance(false),
        Arc::clone(&f.store),
        f.schema.clone(),
    );
    let controller = fleet.controller();
    let stop = Arc::new(AtomicBool::new(false));
    let hammer = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Acquire) {
                controller.request_rebalance();
                std::thread::yield_now();
            }
        })
    };

    let drains = spawn_drains(fleet.take_trainers());
    let mut now = 0;
    for (interval, partition) in f.partitions.iter().enumerate() {
        now += TICK_MS;
        fleet.tick(now);
        match interval {
            1 => fleet.kill_host(2),
            3 => fleet.rejoin_host(2),
            _ => {}
        }
        assert!(fleet.ingest_partition(partition));
        assert!(fleet.flush_partition());
    }
    stop.store(true, Ordering::Release);
    hammer.join().expect("hammer thread");

    // 6 shards over 3 live hosts, freshly rebalanced: 2 each.
    let mut owned = vec![0usize; 3];
    for &owner in fleet.placement() {
        owned[owner] += 1;
    }
    assert_eq!(owned, vec![2, 2, 2], "work stealing must heal the skew");

    let output = fleet.finish();
    let union = canonical(drains);
    assert_union_identical(&golden, &union, "racing rebalance fleet");
    assert_zero_drops(&output, "racing rebalance fleet");
    assert!(output.report.rebalance_moves > 0);
    assert_eq!(output.report.hosts_live_at_finish, 3);
}
