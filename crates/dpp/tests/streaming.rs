//! Integration tests for the streaming DPP service: byte-identical
//! equivalence with the one-shot reader tier, session-affinity preservation,
//! graceful shutdown, and error surfacing.

use recd_core::{DataLoaderConfig, JaggedTensor};
use recd_datagen::{DatasetGenerator, WorkloadConfig, WorkloadPreset};
use recd_dpp::{DppConfig, DppService, ShardPolicy};
use recd_etl::cluster_by_session;
use recd_reader::{PreprocessPipeline, ReaderConfig, ReaderTier, SparseTransform};
use recd_storage::{StoredPartition, TableStore, TectonicSim};
use std::sync::Arc;

struct Fixture {
    schema: recd_data::Schema,
    store: Arc<TableStore>,
    partition: StoredPartition,
    rows: usize,
}

fn fixture(clustered: bool) -> Fixture {
    let generator = DatasetGenerator::new(WorkloadConfig::preset(WorkloadPreset::Tiny));
    let partition = generator.generate_partition();
    let samples = if clustered {
        cluster_by_session(&partition.samples)
    } else {
        partition.samples.clone()
    };
    // Small stripes so the partition spans many files and the pipeline
    // actually streams.
    let store = Arc::new(TableStore::new(TectonicSim::new(4), 16, 1));
    let (stored, _) = store.land_partition(&partition.schema, "t", 0, &samples);
    assert!(stored.files.len() >= 4, "fixture must span several files");
    Fixture {
        schema: partition.schema,
        store,
        partition: stored,
        rows: samples.len(),
    }
}

fn reader_config(schema: &recd_data::Schema, batch_size: usize) -> ReaderConfig {
    ReaderConfig::new(batch_size, DataLoaderConfig::from_schema(schema))
}

/// The acceptance criterion: with file-round-robin sharding and
/// `shards == readers`, the streaming service's concatenated output is
/// sample-for-sample identical to the one-shot `ReaderTier`, for any worker
/// count.
#[test]
fn streaming_output_matches_one_shot_reader_tier() {
    let f = fixture(true);
    let readers = 3;

    let tier = ReaderTier::new(readers, reader_config(&f.schema, 64), || {
        PreprocessPipeline::standard(1 << 20, 64)
    });
    let (outputs, tier_report) = tier.run(&f.store, &f.schema, &f.partition).unwrap();
    let one_shot: Vec<_> = outputs.into_iter().flat_map(|o| o.batches).collect();

    for compute_workers in [1, 2, 4] {
        let config = DppConfig::new(reader_config(&f.schema, 64))
            .with_policy(ShardPolicy::FileRoundRobin)
            .with_shards(readers)
            .with_fill_workers(2)
            .with_compute_workers(compute_workers)
            .with_pipeline_factory(|| PreprocessPipeline::standard(1 << 20, 64));
        let mut handle = DppService::start(config, Arc::clone(&f.store), f.schema.clone());
        handle.submit_partition(&f.partition);
        let output = handle.finish().expect("clean run");

        assert_eq!(
            output.batches.len(),
            one_shot.len(),
            "batch count must match at {compute_workers} workers"
        );
        for (i, (streamed, batch)) in output.batches.iter().zip(&one_shot).enumerate() {
            assert_eq!(
                streamed, batch,
                "batch {i} diverged at {compute_workers} workers"
            );
        }
        assert_eq!(output.report.samples, tier_report.metrics.samples);
        assert_eq!(
            output.report.reader_metrics.egress_bytes,
            tier_report.metrics.egress_bytes
        );
        assert_eq!(output.report.compute_workers, compute_workers);
        assert!(output.report.samples_per_second > 0.0);
    }
}

/// Session-affine sharding preserves the in-batch dedup factor that O1/O2
/// clustering created; row-round-robin sharding (the ablation baseline)
/// destroys it.
#[test]
fn session_affine_sharding_preserves_dedup_factor() {
    let f = fixture(true);
    let run = |policy: ShardPolicy| {
        let config = DppConfig::new(reader_config(&f.schema, 64))
            .with_policy(policy)
            .with_shards(4)
            .with_compute_workers(2);
        let mut handle = DppService::start(config, Arc::clone(&f.store), f.schema.clone());
        handle.submit_partition(&f.partition);
        handle.finish().expect("clean run").report
    };
    let affine = run(ShardPolicy::SessionAffine);
    let scattered = run(ShardPolicy::RowRoundRobin);
    assert_eq!(affine.samples, scattered.samples);
    assert!(
        affine.dedupe_factor > scattered.dedupe_factor,
        "session-affine dedup factor {:.3} must beat row-round-robin {:.3}",
        affine.dedupe_factor,
        scattered.dedupe_factor
    );
    assert!(affine.dedupe_factor > 1.2, "affinity must yield real dedup");
}

/// A transform slow enough that the compute stage becomes the bottleneck,
/// forcing the work queue to fill and backpressure to propagate upstream.
struct SlowIdentity;

impl SparseTransform for SlowIdentity {
    fn apply_flat(
        &self,
        _values: &mut Vec<u64>,
        _offsets: &mut Vec<usize>,
        _scratch: &mut recd_reader::TransformScratch,
    ) {
        std::thread::sleep(std::time::Duration::from_micros(500));
    }

    fn apply_rowwise(&self, tensor: &JaggedTensor<u64>) -> JaggedTensor<u64> {
        std::thread::sleep(std::time::Duration::from_micros(500));
        tensor.clone()
    }

    fn name(&self) -> &'static str {
        "slow_identity"
    }
}

/// A graceful shutdown drains everything in flight: every submitted sample
/// comes out, and with a deliberately slow compute stage the bounded work
/// queue demonstrably fills to capacity (backpressure engaged) without
/// deadlocking the drain.
#[test]
fn finish_drains_all_in_flight_work_under_backpressure() {
    let f = fixture(true);
    let config = DppConfig::new(reader_config(&f.schema, 32))
        .with_queue_depth(2)
        .with_compute_workers(1)
        .with_pipeline_factory(|| PreprocessPipeline::new().with_sparse(SlowIdentity));
    let mut handle = DppService::start(config, Arc::clone(&f.store), f.schema.clone());
    handle.submit_partition(&f.partition);
    let mid = handle.snapshot();
    assert_eq!(mid.files_submitted as usize, f.partition.files.len());
    let output = handle.finish().expect("clean run");
    assert_eq!(output.report.samples, f.rows);
    assert_eq!(
        output.batches.iter().map(|b| b.batch_size).sum::<usize>(),
        f.rows
    );
    // The slow single compute worker cannot keep up with the router, so the
    // bounded work queue must have hit its capacity: the router spent time
    // blocked in send — that is backpressure, and the drain still completed.
    assert_eq!(
        output.report.peak_work_queue_depth, 2,
        "work queue must fill to its capacity under a slow compute stage"
    );
}

/// The batch pool closes the fill → router → compute → fill buffer loop:
/// over a many-file run, almost every acquire is served by a recycled
/// buffer — misses count only the warmup population — and the output is
/// still byte-deterministic.
#[test]
fn batch_pool_recycles_buffers_at_steady_state() {
    let f = fixture(true);
    // Misses can occur for every concurrently live shell before the first
    // recycles land (worst case ≈ 2*queue_depth + shards + workers ≈ 14
    // here), so the run must be long enough that the 10% miss budget
    // comfortably exceeds that population regardless of scheduling.
    let rounds = 24;
    let config = DppConfig::new(reader_config(&f.schema, 32))
        .with_fill_workers(2)
        .with_compute_workers(2)
        .with_shards(2)
        .with_queue_depth(4)
        .with_pipeline_factory(|| PreprocessPipeline::standard(1 << 20, 64));
    let mut handle = DppService::start(config, Arc::clone(&f.store), f.schema.clone());
    for _ in 0..rounds {
        handle.submit_partition(&f.partition);
    }
    let output = handle.finish().expect("clean run");

    let pool = output.report.batch_pool;
    let acquires = pool.hits + pool.misses;
    // Every file decode, shard accumulator, and emitted chunk acquires once.
    assert!(
        acquires as usize >= rounds * f.partition.files.len(),
        "fills alone should acquire at least once per file"
    );
    assert!(
        pool.reuse_rate() > 0.9,
        "steady-state buffer reuse must exceed 90% (got {:.1}% over {acquires} acquires)",
        pool.reuse_rate() * 100.0
    );
    // The blob-scratch pool closes the same loop around `get_into`, one
    // level deeper: each fill worker acquires one pool-owned blob buffer
    // for its whole lifetime and recycles it on exit to warm its successor.
    // Steady-state fills are therefore blob-allocation-free — total blob
    // acquires are bounded by worker incarnations (2 here, no scaling),
    // never one per fill across the hundreds of files this run decodes.
    let blob = output.report.blob_pool;
    assert!(
        blob.hits + blob.misses <= 2,
        "blob scratch must be acquired once per fill-worker incarnation, \
         not per fill (got {} hits + {} misses)",
        blob.hits,
        blob.misses,
    );
    assert_eq!(output.report.samples, rounds * f.rows);
}

/// A consumer that hands finished `ConvertedBatch` shells back through
/// `converted_pool()` closes the compute → sink → consumer → compute loop:
/// later batches are built into recycled shells (pool hits) and remain
/// value-identical to a run with no recycling at all.
#[test]
fn converted_shells_recycle_through_the_consumer_loop() {
    let f = fixture(true);
    let run = |recycle: bool| {
        let config = DppConfig::new(reader_config(&f.schema, 32))
            .with_compute_workers(2)
            .with_shards(2)
            .with_pipeline_factory(|| PreprocessPipeline::standard(1 << 20, 64));
        let mut handle = DppService::start(config, Arc::clone(&f.store), f.schema.clone());
        let pool = handle.converted_pool();
        for round in 0..4 {
            handle.submit_partition(&f.partition);
            if recycle && round > 0 {
                // Simulate a trainer returning shells mid-run: dirty
                // batches of a *different* prior shape must still refill
                // correctly.
                pool.recycle(recd_core::ConvertedBatch::default());
            }
        }
        handle.finish().expect("clean run")
    };
    let recycled = run(true);
    let fresh = run(false);
    assert_eq!(
        recycled.batches, fresh.batches,
        "recycling must not change output"
    );
    assert!(
        recycled.report.converted_pool.hits > 0,
        "recycled shells must be reused by compute workers"
    );
    assert_eq!(fresh.report.converted_pool.hits, 0);
}

/// Fill errors don't wedge the pipeline: the run drains, reports the error,
/// and still returns the report.
#[test]
fn missing_file_surfaces_as_error_without_deadlock() {
    let f = fixture(true);
    let config = DppConfig::new(reader_config(&f.schema, 64));
    let mut handle = DppService::start(config, Arc::clone(&f.store), f.schema.clone());
    handle.submit_file("does-not-exist");
    handle.submit_partition(&f.partition);
    let err = handle.finish().expect_err("missing file must fail the run");
    assert_eq!(err.errors.len(), 1);
    assert!(err.errors[0].contains("does-not-exist"));
    // The rest of the stream still drained — and the batches it produced
    // are returned, not discarded.
    assert_eq!(err.output.report.samples, f.rows);
    assert_eq!(
        err.output
            .batches
            .iter()
            .map(|b| b.batch_size)
            .sum::<usize>(),
        f.rows
    );
}
