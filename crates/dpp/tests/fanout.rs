//! Fan-out sink determinism tests: for every [`TrainerAssignPolicy`] the
//! multiset union of batches across all trainer endpoints must be
//! byte-identical to the single-sink baseline, `ShardPinned` must never
//! split one shard across trainers, and per-trainer flow control must keep
//! lanes bounded while routing around a stalled trainer.

use recd_core::{ConvertedBatch, DataLoaderConfig};
use recd_datagen::{DatasetGenerator, WorkloadConfig, WorkloadPreset};
use recd_dpp::{DppConfig, DppService, ShardPolicy, TrainerAssignPolicy, TrainerBatch};
use recd_etl::cluster_by_session;
use recd_reader::{PreprocessPipeline, ReaderConfig};
use recd_storage::{StoredPartition, TableStore, TectonicSim};
use std::sync::Arc;

struct Fixture {
    schema: recd_data::Schema,
    store: Arc<TableStore>,
    partition: StoredPartition,
    rows: usize,
}

fn fixture() -> Fixture {
    let generator = DatasetGenerator::new(WorkloadConfig::preset(WorkloadPreset::Tiny));
    let partition = generator.generate_partition();
    let samples = cluster_by_session(&partition.samples);
    // Small stripes so the partition spans many files and the pipeline
    // actually streams.
    let store = Arc::new(TableStore::new(TectonicSim::new(4), 16, 1));
    let (stored, _) = store.land_partition(&partition.schema, "t", 0, &samples);
    assert!(stored.files.len() >= 4, "fixture must span several files");
    Fixture {
        schema: partition.schema,
        store,
        partition: stored,
        rows: samples.len(),
    }
}

fn config(f: &Fixture) -> DppConfig {
    DppConfig::new(ReaderConfig::new(
        64,
        DataLoaderConfig::from_schema(&f.schema),
    ))
    .with_policy(ShardPolicy::SessionAffine)
    .with_shards(4)
    .with_fill_workers(2)
    .with_compute_workers(2)
    .with_pipeline_factory(|| PreprocessPipeline::standard(1 << 20, 64))
}

/// Single-sink baseline: collect mode returns batches in `(shard, seq)`
/// order, which is the canonical ordering the fan-out union is compared
/// against.
fn baseline(f: &Fixture, rounds: usize) -> Vec<ConvertedBatch> {
    let mut handle = DppService::start(config(f), Arc::clone(&f.store), f.schema.clone());
    for _ in 0..rounds {
        handle.submit_partition(&f.partition);
    }
    handle.finish().expect("clean baseline run").batches
}

/// Runs a fan-out service with one draining consumer thread per trainer and
/// returns every delivered batch (with provenance) plus the run report.
fn run_fan_out(
    f: &Fixture,
    trainers: usize,
    policy: TrainerAssignPolicy,
    rounds: usize,
) -> (Vec<Vec<TrainerBatch>>, recd_dpp::DppReport) {
    let config = config(f).with_trainers(trainers).with_assign_policy(policy);
    let mut handle = DppService::start(config, Arc::clone(&f.store), f.schema.clone());
    let consumers: Vec<_> = handle
        .take_trainers()
        .into_iter()
        .map(|trainer| std::thread::spawn(move || trainer.drain()))
        .collect();
    for _ in 0..rounds {
        handle.submit_partition(&f.partition);
    }
    let report = handle.finish().expect("clean fan-out run").report;
    let per_trainer: Vec<Vec<TrainerBatch>> = consumers
        .into_iter()
        .map(|c| c.join().expect("trainer consumer"))
        .collect();
    (per_trainer, report)
}

/// The acceptance criterion: under every assignment policy, the union of
/// batches across 4 trainer endpoints — re-sorted into the canonical
/// `(shard, seq)` order — is byte-identical to the single-sink baseline.
#[test]
fn fan_out_union_is_byte_identical_to_single_sink_for_every_policy() {
    let f = fixture();
    let expected = baseline(&f, 2);
    assert!(expected.len() >= 8, "baseline must produce several batches");

    for policy in [
        TrainerAssignPolicy::ShardPinned,
        TrainerAssignPolicy::LeastLoaded,
        TrainerAssignPolicy::RoundRobin,
    ] {
        let (per_trainer, report) = run_fan_out(&f, 4, policy, 2);
        assert_eq!(report.assign_policy, policy.name());

        let mut union: Vec<TrainerBatch> = per_trainer.into_iter().flatten().collect();
        assert_eq!(
            union.len(),
            expected.len(),
            "{}: union batch count must match the baseline",
            policy.name()
        );
        // Each shard's stream must arrive gap-free: seqs 0..n per shard.
        union.sort_by_key(|t| (t.shard, t.seq));
        let mut next = vec![0u64; report.shards];
        for item in &union {
            assert_eq!(
                item.seq,
                next[item.shard],
                "{}: shard {} stream has a gap or duplicate",
                policy.name(),
                item.shard
            );
            next[item.shard] += 1;
        }
        // Canonical order restored, the union must be byte-identical.
        for (i, (got, want)) in union.iter().zip(&expected).enumerate() {
            assert_eq!(
                &got.batch,
                want,
                "{}: batch {i} diverged from the single-sink baseline",
                policy.name()
            );
        }
        // Delivery accounting agrees with the payload.
        let delivered: u64 = report.trainers.iter().map(|t| t.delivered_samples).sum();
        assert_eq!(delivered as usize, 2 * f.rows);
        assert!(report.trainers.iter().all(|t| t.dropped_batches == 0));
    }
}

/// `ShardPinned` must never deliver one shard's rows to two trainers, and
/// the pinning must be the documented `shard % trainers` map.
#[test]
fn shard_pinned_never_splits_a_shard_across_trainers() {
    let f = fixture();
    let trainers = 3;
    let (per_trainer, report) = run_fan_out(&f, trainers, TrainerAssignPolicy::ShardPinned, 2);
    assert_eq!(report.shards, 4);
    let mut shard_owner: Vec<Option<usize>> = vec![None; report.shards];
    for (trainer, batches) in per_trainer.iter().enumerate() {
        for item in batches {
            assert_eq!(item.trainer, trainer, "lane must stamp its own id");
            assert_eq!(
                item.shard % trainers,
                trainer,
                "shard {} must be pinned to trainer {}",
                item.shard,
                item.shard % trainers
            );
            match shard_owner[item.shard] {
                None => shard_owner[item.shard] = Some(trainer),
                Some(owner) => assert_eq!(
                    owner, trainer,
                    "shard {} delivered to two trainers",
                    item.shard
                ),
            }
        }
    }
    assert!(
        shard_owner.iter().filter(|o| o.is_some()).count() >= 2,
        "fixture must exercise several shards"
    );
}

/// Per-trainer flow control: lanes stay bounded, and with `LeastLoaded` a
/// trainer that refuses to consume until the end only absorbs its bounded
/// backlog (lane capacity plus spillover) while the healthy trainers keep
/// streaming the rest.
#[test]
fn stalled_trainer_keeps_its_lane_bounded_without_wedging_the_service() {
    let f = fixture();
    let lane_depth = 2;
    let config = config(&f)
        .with_trainers(3)
        .with_assign_policy(TrainerAssignPolicy::LeastLoaded)
        .with_trainer_queue_depth(lane_depth);
    let mut handle = DppService::start(config, Arc::clone(&f.store), f.schema.clone());
    let mut trainers = handle.take_trainers();
    let stalled = trainers.remove(0);
    let healthy: Vec<_> = trainers
        .into_iter()
        .map(|trainer| std::thread::spawn(move || trainer.drain().len()))
        .collect();
    // The stalled trainer consumes nothing until the submission phase is
    // over: it blocks on a signal the main thread sends before finish().
    let (release_tx, release_rx) = std::sync::mpsc::channel::<()>();
    let stalled_thread = std::thread::spawn(move || {
        release_rx.recv().expect("release signal");
        let drained = stalled.drain();
        (drained.len(), stalled.peak_queue_depth())
    });
    let rounds = 6;
    for _ in 0..rounds {
        handle.submit_partition(&f.partition);
    }
    release_tx.send(()).expect("stalled trainer alive");
    let report = handle.finish().expect("clean run");
    let healthy_batches: usize = healthy.into_iter().map(|c| c.join().unwrap()).sum();
    let (stalled_batches, stalled_peak) = stalled_thread.join().unwrap();

    let total = report.report.batches;
    assert_eq!(stalled_batches + healthy_batches, total, "nothing lost");
    assert!(
        stalled_peak <= lane_depth,
        "stalled lane must stay within its bounded capacity"
    );
    // LeastLoaded steers around the full lane: the stalled trainer receives
    // at most its lane capacity plus the shared spillover, far below an even
    // split of a long run.
    assert!(
        total > 12,
        "run must be long enough to make the imbalance meaningful"
    );
    assert!(
        stalled_batches < total / 2,
        "a non-consuming trainer must not receive an even share \
         (stalled {stalled_batches} of {total})"
    );
    let lanes = &report.report.trainers;
    assert!(lanes.iter().all(|l| l.peak_queue_depth <= lane_depth));
    assert_eq!(
        lanes.iter().map(|l| l.consumed_batches).sum::<u64>() as usize,
        total
    );
}

/// Killing a trainer mid-run under a load-balancing policy must lose no
/// batches: the victim's already-delivered batches are drained before the
/// handle drops, and everything subsequently aimed at the dead lane
/// re-routes to the survivor — the cross-lane union stays byte-identical to
/// the single-sink baseline.
#[test]
fn mid_run_trainer_kill_reroutes_instead_of_dropping() {
    let f = fixture();
    // The baseline must share the run's flush schedule: a barrier flushes
    // partial shard accumulators as short batches, so batch boundaries are a
    // function of (submission order, barrier placement).
    let expected = {
        let mut handle = DppService::start(config(&f), Arc::clone(&f.store), f.schema.clone());
        handle.submit_partition(&f.partition);
        assert!(handle.flush_partition(), "baseline barrier must resolve");
        handle.submit_partition(&f.partition);
        handle.submit_partition(&f.partition);
        handle.finish().expect("clean baseline run").batches
    };
    for policy in [
        TrainerAssignPolicy::LeastLoaded,
        TrainerAssignPolicy::RoundRobin,
    ] {
        let config = config(&f).with_trainers(2).with_assign_policy(policy);
        let mut handle = DppService::start(config, Arc::clone(&f.store), f.schema.clone());
        let mut trainers = handle.take_trainers();
        let survivor = trainers.pop().expect("two trainers");
        let victim = trainers.pop().expect("two trainers");

        // Phase 1: one full partition, barrier-delivered into the lanes.
        handle.submit_partition(&f.partition);
        assert!(handle.flush_partition(), "barrier must resolve");

        // Kill: drain what the victim's lane already holds (those batches
        // count as consumed), then drop the handle. The tombstone lands
        // before the channel closes, so the sink never targets the lane
        // again.
        let mut union: Vec<TrainerBatch> = Vec::new();
        while let Some(item) = victim.try_recv() {
            union.push(item);
        }
        drop(victim);

        // Phase 2: everything else must flow to the survivor.
        let consumer = std::thread::spawn(move || survivor.drain());
        handle.submit_partition(&f.partition);
        handle.submit_partition(&f.partition);
        let report = handle.finish().expect("clean run").report;
        union.extend(consumer.join().expect("survivor consumer"));

        assert_eq!(
            union.len(),
            expected.len(),
            "{}: no batch may be lost to the killed trainer",
            policy.name()
        );
        assert!(
            report.trainers.iter().all(|t| t.dropped_batches == 0),
            "{}: every batch must re-route, not drop",
            policy.name()
        );
        union.sort_by_key(|t| (t.shard, t.seq));
        for (i, (got, want)) in union.iter().zip(&expected).enumerate() {
            assert_eq!(
                &got.batch,
                want,
                "{}: batch {i} diverged from the single-sink baseline",
                policy.name()
            );
        }
    }
}

/// A trainer that drops its handle outright must not attract traffic under
/// `LeastLoaded`: its frozen-empty lane would otherwise win every
/// lowest-load tie and swallow the whole stream while live trainers starve.
#[test]
fn least_loaded_routes_around_a_dead_trainer() {
    let f = fixture();
    let config = config(&f)
        .with_trainers(2)
        .with_assign_policy(TrainerAssignPolicy::LeastLoaded);
    let mut handle = DppService::start(config, Arc::clone(&f.store), f.schema.clone());
    let mut trainers = handle.take_trainers();
    let survivor = trainers.pop().expect("two trainers");
    drop(trainers); // trainer 0 dies before the run starts
    let consumer = std::thread::spawn(move || survivor.drain().len());
    for _ in 0..3 {
        handle.submit_partition(&f.partition);
    }
    let report = handle.finish().expect("clean run").report;
    let consumed = consumer.join().unwrap();
    assert_eq!(
        consumed, report.batches,
        "the live trainer must receive the entire stream"
    );
    assert_eq!(
        report.trainers[0].dropped_batches, 0,
        "nothing should be routed to (and dropped at) the dead lane"
    );
    assert_eq!(report.trainers[1].consumed_batches as usize, report.batches);
}
