//! Exactly-once checkpoint/resume of the continuous feed path: a service
//! crash-restarted from a [`DppCheckpoint`] and fed an **at-least-once
//! replay** of the partition stream must emit, across both incarnations,
//! exactly the batches of an uninterrupted run — byte for byte.

use recd_core::DataLoaderConfig;
use recd_datagen::{DatasetGenerator, WorkloadConfig, WorkloadPreset};
use recd_dpp::{
    DppCheckpoint, DppConfig, DppReport, DppService, ShardPolicy, TrainerAssignPolicy, TrainerBatch,
};
use recd_etl::cluster_by_session;
use recd_reader::{PreprocessPipeline, ReaderConfig};
use recd_storage::{StoredPartition, TableStore, TectonicSim};
use std::sync::Arc;

const SHARDS: usize = 4;

struct Fixture {
    schema: recd_data::Schema,
    store: Arc<TableStore>,
    /// Four hourly partitions of deliberately uneven file counts.
    partitions: Vec<StoredPartition>,
}

fn fixture() -> Fixture {
    let generator = DatasetGenerator::new(WorkloadConfig::preset(WorkloadPreset::Tiny));
    let partition = generator.generate_partition();
    let samples = cluster_by_session(&partition.samples);
    let store = Arc::new(TableStore::new(TectonicSim::new(4), 8, 1));
    // Uneven slice sizes so the cumulative file count at the checkpoint is
    // not a multiple of the shard count: the resumed run's FileRoundRobin
    // rotation then genuinely depends on the checkpointed baseline. With
    // 8-row files, hours 0–1 span ceil(33/8) + ceil(40/8) = 10 files.
    let n = samples.len();
    assert!(n >= 120, "Tiny preset must provide enough rows");
    let cuts = [0, 33, 73, (73 + n) / 2, n];
    let mut partitions = Vec::new();
    for hour in 0..4 {
        let (stored, _) = store.land_partition(
            &partition.schema,
            "events",
            hour as u64,
            &samples[cuts[hour]..cuts[hour + 1]],
        );
        partitions.push(stored);
    }
    Fixture {
        schema: partition.schema,
        store,
        partitions,
    }
}

fn config(f: &Fixture) -> DppConfig {
    DppConfig::new(ReaderConfig::new(
        32,
        DataLoaderConfig::from_schema(&f.schema),
    ))
    .with_policy(ShardPolicy::FileRoundRobin)
    .with_shards(SHARDS)
    .with_fill_workers(2)
    .with_compute_workers(2)
    .with_trainers(1)
    .with_assign_policy(TrainerAssignPolicy::ShardPinned)
    .with_pipeline_factory(|| PreprocessPipeline::standard(1 << 20, 64))
}

/// Ingests `parts` into a running handle (flushing at every partition
/// boundary), optionally checkpoints, and drains the single trainer lane.
fn drive(
    mut handle: recd_dpp::DppHandle,
    parts: &[StoredPartition],
    checkpoint_after: bool,
) -> (Vec<TrainerBatch>, Option<Vec<u8>>, DppReport) {
    let trainer = handle.take_trainers().remove(0);
    let consumer = std::thread::spawn(move || trainer.drain());
    for part in parts {
        handle.ingest_partition(part);
        assert!(handle.flush_partition(), "barrier must resolve");
    }
    let checkpoint = checkpoint_after.then(|| handle.checkpoint().to_bytes());
    let report = handle.finish().expect("clean run").report;
    (
        consumer.join().expect("trainer consumer"),
        checkpoint,
        report,
    )
}

/// Splits delivered batches per shard, in per-shard sequence order.
fn by_shard(mut batches: Vec<TrainerBatch>) -> Vec<Vec<TrainerBatch>> {
    batches.sort_by_key(|t| (t.shard, t.seq));
    let mut shards: Vec<Vec<TrainerBatch>> = (0..SHARDS).map(|_| Vec::new()).collect();
    for item in batches {
        shards[item.shard].push(item);
    }
    shards
}

#[test]
fn crash_replay_resume_is_byte_identical_and_exactly_once() {
    let f = fixture();
    let files_before_crash: usize = f.partitions[..2].iter().map(|p| p.files.len()).sum();
    assert!(
        !files_before_crash.is_multiple_of(SHARDS),
        "fixture must make the checkpointed rotation baseline load-bearing \
         ({files_before_crash} files, {SHARDS} shards)"
    );

    // The uninterrupted reference run over all four hourly partitions.
    let reference = DppService::start(config(&f), Arc::clone(&f.store), f.schema.clone());
    let (ref_batches, _, ref_report) = drive(reference, &f.partitions, false);
    assert!(
        ref_batches.len() >= 8,
        "reference must emit several batches"
    );

    // First incarnation: consumes hours 0–1, checkpoints at the barrier
    // boundary, then "crashes" (finish stands in for the teardown).
    let first = DppService::start(config(&f), Arc::clone(&f.store), f.schema.clone());
    let (first_batches, checkpoint, first_report) = drive(first, &f.partitions[..2], true);
    assert_eq!(first_report.partitions_ingested, 2);
    assert_eq!(first_report.duplicate_ingests, 0);

    // The checkpoint survives serialization.
    let checkpoint = DppCheckpoint::from_bytes(&checkpoint.expect("checkpoint taken"))
        .expect("checkpoint must decode");
    assert_eq!(checkpoint.files_routed as usize, files_before_crash);
    assert_eq!(checkpoint.ingested.len(), 2);

    // Second incarnation: resumed from the checkpoint and fed an
    // at-least-once replay of the *entire* stream. Hours 0–1 must dedup;
    // hours 2–3 must continue the rotation exactly where the crash left it.
    let resumed = DppService::resume(
        config(&f),
        Arc::clone(&f.store),
        f.schema.clone(),
        checkpoint,
    );
    let (resumed_batches, _, resumed_report) = drive(resumed, &f.partitions, false);
    assert_eq!(
        resumed_report.duplicate_ingests, 2,
        "replayed hours 0-1 must be skipped by dedup"
    );
    assert_eq!(
        resumed_report.partitions_ingested, 4,
        "cumulative ingest accounting continues across the crash"
    );

    // Exactly-once payload: per shard, the reference stream must equal the
    // first incarnation's stream followed by the resumed one's, byte for
    // byte.
    let ref_shards = by_shard(ref_batches);
    let first_shards = by_shard(first_batches);
    let resumed_shards = by_shard(resumed_batches);
    let mut union_total = 0usize;
    for shard in 0..SHARDS {
        let combined: Vec<_> = first_shards[shard]
            .iter()
            .chain(&resumed_shards[shard])
            .collect();
        union_total += combined.len();
        assert_eq!(
            combined.len(),
            ref_shards[shard].len(),
            "shard {shard}: batch count must match the uninterrupted run"
        );
        for (i, (got, want)) in combined.iter().zip(&ref_shards[shard]).enumerate() {
            assert_eq!(
                got.batch, want.batch,
                "shard {shard}: batch {i} diverged from the uninterrupted run"
            );
        }
    }
    assert_eq!(union_total, ref_report.batches);
}

#[test]
fn duplicate_ingest_is_skipped_within_a_single_run() {
    let f = fixture();
    let mut handle = DppService::start(config(&f), Arc::clone(&f.store), f.schema.clone());
    let trainer = handle.take_trainers().remove(0);
    let consumer = std::thread::spawn(move || trainer.drain());
    assert!(handle.ingest_partition(&f.partitions[0]));
    assert!(
        !handle.ingest_partition(&f.partitions[0]),
        "second offer of the same partition must be refused"
    );
    assert!(handle.flush_partition());
    let snapshot = handle.snapshot();
    assert_eq!(snapshot.partitions_ingested, 1);
    assert_eq!(snapshot.duplicate_ingests, 1);
    let report = handle.finish().expect("clean run").report;
    let consumed = consumer.join().expect("trainer consumer");
    assert_eq!(report.duplicate_ingests, 1);
    assert_eq!(consumed.len(), report.batches, "no duplicated payload");
}
