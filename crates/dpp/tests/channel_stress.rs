//! Stress tests for the channel's depth/peak gauges under concurrent
//! senders: the peak high-water mark must never under-report a depth any
//! observer witnessed (the old load-then-store scheme could lose the larger
//! of two racing updates), must never exceed capacity, and the depth mirror
//! must agree with the queue when everything drains.

use recd_dpp::{bounded, RecvTimeout};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

#[test]
fn peak_depth_never_under_reports_under_concurrent_senders() {
    // Several rounds to shake out scheduling-dependent interleavings.
    for round in 0..8 {
        let capacity = 8;
        let senders = 4;
        let per_sender = 500u64;
        let (tx, rx) = bounded::<u64>(capacity);
        let gauge = rx.gauge();

        // A passive observer hammers the lock-free depth gauge and records
        // the largest depth it ever witnessed.
        let done = Arc::new(AtomicBool::new(false));
        let witnessed = Arc::new(AtomicUsize::new(0));
        let observer = {
            let gauge = rx.gauge();
            let done = Arc::clone(&done);
            let witnessed = Arc::clone(&witnessed);
            std::thread::spawn(move || {
                while !done.load(Ordering::Acquire) {
                    witnessed.fetch_max(gauge.len(), Ordering::AcqRel);
                }
            })
        };

        let producers: Vec<_> = (0..senders)
            .map(|s| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    for i in 0..per_sender {
                        tx.send(s as u64 * per_sender + i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);

        let mut received = Vec::with_capacity((senders as usize) * per_sender as usize);
        while let Some(v) = rx.recv() {
            received.push(v);
            if received.len() % 97 == 0 {
                // Let the queue refill so the peak is actually exercised.
                std::thread::yield_now();
            }
        }
        for p in producers {
            p.join().unwrap();
        }
        done.store(true, Ordering::Release);
        observer.join().unwrap();

        // Conservation: every item exactly once.
        received.sort_unstable();
        let expected: Vec<u64> = (0..senders as u64 * per_sender).collect();
        assert_eq!(
            received, expected,
            "round {round}: items lost or duplicated"
        );

        // The gauge contracts under concurrency.
        let peak = gauge.peak_depth();
        let seen = witnessed.load(Ordering::Acquire);
        assert!(
            peak >= seen,
            "round {round}: peak {peak} under-reports a witnessed depth {seen}"
        );
        assert!(
            peak <= capacity,
            "round {round}: peak {peak} exceeds capacity {capacity}"
        );
        assert_eq!(
            gauge.len(),
            0,
            "round {round}: drained channel must read empty"
        );
    }
}

#[test]
fn saturating_sends_drive_the_peak_exactly_to_capacity() {
    let capacity = 4;
    let (tx, rx) = bounded::<u32>(capacity);
    // Fill to the brim without a consumer: the peak must be exact, not a
    // lost-update approximation.
    for i in 0..capacity as u32 {
        tx.try_send(i).unwrap();
    }
    assert!(tx.try_send(99).is_err(), "channel must be full");
    assert_eq!(tx.peak_depth(), capacity);
    assert_eq!(tx.len(), capacity);
    // Draining moves depth down but never the peak.
    while rx.try_recv().is_some() {}
    assert_eq!(rx.len(), 0);
    assert_eq!(rx.peak_depth(), capacity);
}

#[test]
fn blocked_senders_under_saturation_preserve_fifo_and_peak_bounds() {
    let capacity = 2;
    let senders = 6;
    let (tx, rx) = bounded::<usize>(capacity);
    let producers: Vec<_> = (0..senders)
        .map(|s| {
            let tx = tx.clone();
            std::thread::spawn(move || {
                // Every sender pushes several items into a tiny queue, so
                // most sends block at the capacity wall.
                for i in 0..50 {
                    tx.send(s * 50 + i).unwrap();
                }
            })
        })
        .collect();
    drop(tx);

    // Consume slowly enough that the wall is hit constantly.
    let mut count = 0usize;
    loop {
        match rx.recv_timeout(Duration::from_secs(5)) {
            RecvTimeout::Item(_) => count += 1,
            RecvTimeout::Timeout => panic!("producers stalled"),
            RecvTimeout::Disconnected => break,
        }
    }
    for p in producers {
        p.join().unwrap();
    }
    assert_eq!(count, senders * 50);
    assert_eq!(
        rx.peak_depth(),
        capacity,
        "sustained saturation must pin the peak at capacity"
    );
}
