//! A swap-buffer arena for batch shells: finished stages recycle their
//! buffers back instead of dropping them, so steady-state batches flow
//! fill → router → compute → sink without allocating.
//!
//! The pool is deliberately dumb — a bounded `Mutex<Vec<T>>` shelf plus
//! hit/miss counters — because its contract is simple: [`BatchPool::acquire`]
//! pops a reclaimed shell when one is available (a *hit*) and falls back to
//! the caller's constructor otherwise (a *miss*); [`BatchPool::recycle`]
//! reclaims a shell and shelves it unless the pool is full (a *discard*,
//! which bounds pool memory at teardown spikes). At steady state every
//! in-flight buffer came off the shelf, so the hit rate converges toward
//! 1.0 and misses measure exactly the warmup population.

use recd_core::ConvertedBatch;
use recd_data::ColumnarBatch;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// A shell that can be reclaimed into a reusable state when it returns to a
/// [`BatchPool`].
pub trait Reclaim {
    /// Resets the shell for reuse, keeping its buffer capacity.
    fn reclaim(&mut self);
}

impl Reclaim for ColumnarBatch {
    /// Clears all rows; column shape and buffer capacity survive, which is
    /// what the next fill or accumulate pass reuses.
    fn reclaim(&mut self) {
        self.clear();
    }
}

impl Reclaim for ConvertedBatch {
    /// Intentionally keeps the previous contents: every conversion-into
    /// entry point overwrites all fields, and leaving the tensors warm is
    /// precisely what lets a refill reuse their buffers (matching feature
    /// keys short-circuit to flat buffer copies).
    fn reclaim(&mut self) {}
}

/// Point-in-time counters of one pool, reported in
/// [`DppReport`](crate::DppReport) and [`DppSnapshot`](crate::DppSnapshot).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PoolStats {
    /// Acquires served from the shelf (no allocation).
    pub hits: u64,
    /// Acquires that fell back to constructing a fresh shell.
    pub misses: u64,
    /// Shells returned to the shelf.
    pub recycled: u64,
    /// Shells dropped because the shelf was full.
    pub discarded: u64,
    /// Idle shells dropped by [`BatchPool::set_capacity`] when dynamic
    /// scaling reduced the in-flight population the pool needs to cover.
    pub trimmed: u64,
    /// Shelf capacity at snapshot time (shrinks on dynamic scale-down).
    pub capacity: usize,
}

impl PoolStats {
    /// Fraction of acquires served without allocation, in `[0, 1]`.
    /// Returns 0 when nothing was acquired.
    pub fn reuse_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A bounded shelf of reusable batch shells with hit/miss accounting.
#[derive(Debug)]
pub struct BatchPool<T> {
    shelf: Mutex<Vec<T>>,
    capacity: AtomicUsize,
    hits: AtomicU64,
    misses: AtomicU64,
    recycled: AtomicU64,
    discarded: AtomicU64,
    trimmed: AtomicU64,
}

impl<T: Reclaim> BatchPool<T> {
    /// Creates a pool shelving at most `capacity` idle shells.
    pub fn new(capacity: usize) -> Self {
        Self {
            shelf: Mutex::new(Vec::with_capacity(capacity.min(64))),
            capacity: AtomicUsize::new(capacity.max(1)),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            recycled: AtomicU64::new(0),
            discarded: AtomicU64::new(0),
            trimmed: AtomicU64::new(0),
        }
    }

    /// Current shelf capacity.
    pub fn capacity(&self) -> usize {
        self.capacity.load(Ordering::Acquire)
    }

    /// Resizes the shelf capacity, dropping idle shells that no longer fit.
    /// Called on every dynamic worker resize: a scale-down shrinks the shelf
    /// so memory nothing will ever reuse isn't pinned, and a later scale-up
    /// restores it so the larger in-flight population pools again instead of
    /// allocating per batch.
    pub fn set_capacity(&self, capacity: usize) {
        let capacity = capacity.max(1);
        self.capacity.store(capacity, Ordering::Release);
        let mut dropped = Vec::new();
        {
            let mut shelf = self.shelf.lock().expect("pool lock");
            while shelf.len() > capacity {
                // Collect under the lock, drop outside it: shells can own
                // large buffers and their destructors shouldn't stall
                // concurrent acquires.
                dropped.push(shelf.pop().expect("len checked"));
            }
        }
        self.trimmed
            .fetch_add(dropped.len() as u64, Ordering::Relaxed);
    }

    /// Takes a recycled shell off the shelf, or constructs a fresh one with
    /// `fresh` when the shelf is empty.
    pub fn acquire(&self, fresh: impl FnOnce() -> T) -> T {
        let recycled = self.shelf.lock().expect("pool lock").pop();
        match recycled {
            Some(shell) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                shell
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                fresh()
            }
        }
    }

    /// Reclaims a shell and shelves it for the next acquire; drops it if the
    /// shelf is full.
    pub fn recycle(&self, mut shell: T) {
        shell.reclaim();
        let capacity = self.capacity.load(Ordering::Acquire);
        let mut shelf = self.shelf.lock().expect("pool lock");
        if shelf.len() < capacity {
            shelf.push(shell);
            self.recycled.fetch_add(1, Ordering::Relaxed);
        } else {
            self.discarded.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Number of idle shells currently shelved.
    pub fn idle(&self) -> usize {
        self.shelf.lock().expect("pool lock").len()
    }

    /// Snapshot of the pool counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            recycled: self.recycled.load(Ordering::Relaxed),
            discarded: self.discarded.load(Ordering::Relaxed),
            trimmed: self.trimmed.load(Ordering::Relaxed),
            capacity: self.capacity(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_miss_then_recycle_then_hit() {
        let pool: BatchPool<ColumnarBatch> = BatchPool::new(4);
        let mut batch = pool.acquire(|| ColumnarBatch::new(1, 2));
        assert_eq!(pool.stats().misses, 1);
        batch.push_sample(
            &recd_data::Sample::builder(
                recd_data::SessionId::new(1),
                recd_data::RequestId::new(1),
                recd_data::Timestamp::from_millis(1),
            )
            .dense(vec![1.0])
            .sparse(vec![vec![1], vec![2, 3]])
            .build(),
        );
        pool.recycle(batch);
        assert_eq!(pool.idle(), 1);

        let recycled = pool.acquire(|| ColumnarBatch::new(1, 2));
        let stats = pool.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.recycled, 1);
        // Reclaimed: no rows, shape preserved.
        assert!(recycled.is_empty());
        assert_eq!(recycled.dense_cols(), 1);
        assert_eq!(recycled.sparse_cols(), 2);
        assert_eq!(stats.reuse_rate(), 0.5);
    }

    #[test]
    fn full_shelf_discards() {
        let pool: BatchPool<ColumnarBatch> = BatchPool::new(1);
        pool.recycle(ColumnarBatch::new(0, 0));
        pool.recycle(ColumnarBatch::new(0, 0));
        let stats = pool.stats();
        assert_eq!(stats.recycled, 1);
        assert_eq!(stats.discarded, 1);
        assert_eq!(pool.idle(), 1);
    }

    #[test]
    fn empty_pool_stats() {
        let stats = PoolStats::default();
        assert_eq!(stats.reuse_rate(), 0.0);
    }

    #[test]
    fn set_capacity_trims_idle_shells_and_caps_future_recycles() {
        let pool: BatchPool<ColumnarBatch> = BatchPool::new(4);
        for _ in 0..4 {
            pool.recycle(ColumnarBatch::new(0, 0));
        }
        assert_eq!(pool.idle(), 4);
        pool.set_capacity(2);
        assert_eq!(pool.capacity(), 2);
        assert_eq!(pool.idle(), 2);
        assert_eq!(pool.stats().trimmed, 2);
        // The reduced capacity governs recycles from now on.
        pool.recycle(ColumnarBatch::new(0, 0));
        assert_eq!(pool.idle(), 2);
        assert_eq!(pool.stats().discarded, 1);
        // A later scale-up restores the headroom: recycles shelve again.
        pool.set_capacity(4);
        assert_eq!(pool.capacity(), 4);
        pool.recycle(ColumnarBatch::new(0, 0));
        assert_eq!(pool.idle(), 3);
    }
}
