//! A swap-buffer arena for batch shells: finished stages recycle their
//! buffers back instead of dropping them, so steady-state batches flow
//! fill → router → compute → sink without allocating.
//!
//! The pool's contract is simple: [`BatchPool::acquire_for`] pops a
//! reclaimed shell when one is available (a *hit*) and falls back to the
//! caller's constructor otherwise (a *miss*); [`BatchPool::recycle_for`]
//! reclaims a shell and shelves it unless the pool is full (a *discard*,
//! which bounds pool memory at teardown spikes). At steady state every
//! in-flight buffer came off a shelf, so the hit rate converges toward 1.0
//! and misses measure exactly the warmup population.
//!
//! Two refinements keep reuse effective under many workers:
//!
//! * **per-worker shelves** ([`BatchPool::with_shelves`]): each worker
//!   recycles to and acquires from its own shelf first, so the hot path is
//!   an uncontended lock and a buffer tends to bounce between the same CPU's
//!   caches. An empty home shelf *steals* from siblings before falling back
//!   to allocation, so imbalanced traffic still reuses globally.
//! * **size classes** ([`Reclaim::size_class`]): shells are shelved tagged
//!   with the magnitude of the payload they last carried, and an acquire
//!   with a size hint prefers the smallest shell at or above the hint
//!   (best fit, then largest available). A tiny probe batch no longer
//!   claims — and reallocates inside — the shell a full-size fill warmed.

use recd_core::ConvertedBatch;
use recd_data::ColumnarBatch;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// A shell that can be reclaimed into a reusable state when it returns to a
/// [`BatchPool`].
pub trait Reclaim {
    /// Resets the shell for reuse, keeping its buffer capacity.
    fn reclaim(&mut self);

    /// Magnitude of the payload this shell currently holds, sampled *before*
    /// [`Reclaim::reclaim`] when the shell is recycled. Acquires pass a hint
    /// in the same units and get the best-fitting shell. The default `0`
    /// opts a type out of size classing (every shell fits every hint).
    fn size_class(&self) -> usize {
        0
    }
}

impl Reclaim for ColumnarBatch {
    /// Clears all rows; column shape and buffer capacity survive, which is
    /// what the next fill or accumulate pass reuses.
    fn reclaim(&mut self) {
        self.clear();
    }

    /// Rows held at recycle time — a proxy for the row capacity the shell's
    /// buffers were grown to.
    fn size_class(&self) -> usize {
        self.len()
    }
}

impl Reclaim for ConvertedBatch {
    /// Intentionally keeps the previous contents: every conversion-into
    /// entry point overwrites all fields, and leaving the tensors warm is
    /// precisely what lets a refill reuse their buffers (matching feature
    /// keys short-circuit to flat buffer copies).
    fn reclaim(&mut self) {}

    /// Samples held at recycle time.
    fn size_class(&self) -> usize {
        self.batch_size
    }
}

/// A pooled blob read buffer: the `get_into` scratch fill workers decode
/// DWRF files from. Pool-owned (rather than per-`FileReadScratch`) so the
/// buffer survives worker retirement and respawn across dynamic scaling.
#[derive(Debug, Default)]
pub struct BlobScratch(pub Vec<u8>);

impl Reclaim for BlobScratch {
    /// Clears the bytes; the allocation is the whole point.
    fn reclaim(&mut self) {
        self.0.clear();
    }

    /// Bytes of capacity this buffer has grown to.
    fn size_class(&self) -> usize {
        self.0.capacity()
    }
}

/// Point-in-time counters of one pool, reported in
/// [`DppReport`](crate::DppReport) and [`DppSnapshot`](crate::DppSnapshot).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PoolStats {
    /// Acquires served from the shelf (no allocation).
    pub hits: u64,
    /// Acquires that fell back to constructing a fresh shell.
    pub misses: u64,
    /// Shells returned to the shelf.
    pub recycled: u64,
    /// Shells dropped because the shelf was full.
    pub discarded: u64,
    /// Idle shells dropped by [`BatchPool::set_capacity`] when dynamic
    /// scaling reduced the in-flight population the pool needs to cover.
    pub trimmed: u64,
    /// Hits served by stealing from a sibling worker's shelf.
    #[serde(default)]
    pub steals: u64,
    /// Shelf capacity at snapshot time (shrinks on dynamic scale-down).
    pub capacity: usize,
}

impl PoolStats {
    /// Fraction of acquires served without allocation, in `[0, 1]`.
    /// Returns 0 when nothing was acquired.
    pub fn reuse_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A bounded, size-class-aware set of per-worker shelves of reusable batch
/// shells with hit/miss accounting.
#[derive(Debug)]
pub struct BatchPool<T> {
    shelves: Vec<Mutex<Vec<(usize, T)>>>,
    capacity: AtomicUsize,
    hits: AtomicU64,
    misses: AtomicU64,
    recycled: AtomicU64,
    discarded: AtomicU64,
    trimmed: AtomicU64,
    steals: AtomicU64,
}

impl<T: Reclaim> BatchPool<T> {
    /// Creates a single-shelf pool shelving at most `capacity` idle shells.
    pub fn new(capacity: usize) -> Self {
        Self::with_shelves(capacity, 1)
    }

    /// Creates a pool with `shelves` per-worker shelves sharing a total
    /// budget of `capacity` idle shells (split evenly, rounded up).
    pub fn with_shelves(capacity: usize, shelves: usize) -> Self {
        let shelves = shelves.max(1);
        Self {
            shelves: (0..shelves)
                .map(|_| Mutex::new(Vec::with_capacity((capacity / shelves).min(64))))
                .collect(),
            capacity: AtomicUsize::new(capacity.max(1)),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            recycled: AtomicU64::new(0),
            discarded: AtomicU64::new(0),
            trimmed: AtomicU64::new(0),
            steals: AtomicU64::new(0),
        }
    }

    /// Number of per-worker shelves.
    pub fn shelf_count(&self) -> usize {
        self.shelves.len()
    }

    /// Current total shelf capacity.
    pub fn capacity(&self) -> usize {
        self.capacity.load(Ordering::Acquire)
    }

    /// Idle-shell budget of one shelf under the current total capacity.
    fn per_shelf_capacity(&self) -> usize {
        self.capacity().div_ceil(self.shelves.len()).max(1)
    }

    /// Resizes the total shelf capacity, dropping idle shells that no longer
    /// fit. Called on every dynamic worker resize: a scale-down shrinks the
    /// shelves so memory nothing will ever reuse isn't pinned, and a later
    /// scale-up restores them so the larger in-flight population pools again
    /// instead of allocating per batch.
    pub fn set_capacity(&self, capacity: usize) {
        let capacity = capacity.max(1);
        self.capacity.store(capacity, Ordering::Release);
        let per_shelf = self.per_shelf_capacity();
        let mut dropped = Vec::new();
        for shelf in &self.shelves {
            let mut shelf = shelf.lock().expect("pool lock");
            while shelf.len() > per_shelf {
                // Collect under the lock, drop outside it: shells can own
                // large buffers and their destructors shouldn't stall
                // concurrent acquires.
                dropped.push(shelf.pop().expect("len checked"));
            }
        }
        self.trimmed
            .fetch_add(dropped.len() as u64, Ordering::Relaxed);
    }

    /// Pops the best-fitting shell off one shelf: the smallest size class at
    /// or above `hint`, else the largest shelved (its buffers are the
    /// warmest available).
    fn pop_best(shelf: &mut Vec<(usize, T)>, hint: usize) -> Option<T> {
        if shelf.is_empty() {
            return None;
        }
        let mut best: Option<(usize, usize)> = None; // (index, class)
        let mut largest = (0, 0usize); // (index, class)
        for (index, (class, _)) in shelf.iter().enumerate() {
            if *class >= largest.1 {
                largest = (index, *class);
            }
            if *class >= hint && best.is_none_or(|(_, c)| *class < c) {
                best = Some((index, *class));
            }
        }
        let index = best.unwrap_or(largest).0;
        Some(shelf.swap_remove(index).1)
    }

    /// Takes a recycled shell for `worker` — its own shelf first, then
    /// stealing from siblings — or constructs a fresh one with `fresh`.
    /// `size_hint` is in [`Reclaim::size_class`] units; pass 0 to accept
    /// any shell.
    pub fn acquire_for(&self, worker: usize, size_hint: usize, fresh: impl FnOnce() -> T) -> T {
        let shelves = self.shelves.len();
        let home = worker % shelves;
        if let Some(shell) = Self::pop_best(
            &mut self.shelves[home].lock().expect("pool lock"),
            size_hint,
        ) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return shell;
        }
        for offset in 1..shelves {
            let victim = (home + offset) % shelves;
            if let Some(shell) = Self::pop_best(
                &mut self.shelves[victim].lock().expect("pool lock"),
                size_hint,
            ) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.steals.fetch_add(1, Ordering::Relaxed);
                return shell;
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        fresh()
    }

    /// Reclaims a shell onto `worker`'s shelf for the next acquire; drops it
    /// if that shelf is full.
    pub fn recycle_for(&self, worker: usize, mut shell: T) {
        let class = shell.size_class();
        shell.reclaim();
        let per_shelf = self.per_shelf_capacity();
        let home = worker % self.shelves.len();
        let mut shelf = self.shelves[home].lock().expect("pool lock");
        if shelf.len() < per_shelf {
            shelf.push((class, shell));
            self.recycled.fetch_add(1, Ordering::Relaxed);
        } else {
            self.discarded.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Takes a recycled shell off shelf 0, or constructs a fresh one.
    /// Single-shelf convenience over [`BatchPool::acquire_for`].
    pub fn acquire(&self, fresh: impl FnOnce() -> T) -> T {
        self.acquire_for(0, 0, fresh)
    }

    /// Reclaims a shell onto shelf 0. Single-shelf convenience over
    /// [`BatchPool::recycle_for`].
    pub fn recycle(&self, shell: T) {
        self.recycle_for(0, shell);
    }

    /// Number of idle shells currently shelved across all shelves.
    pub fn idle(&self) -> usize {
        self.shelves
            .iter()
            .map(|shelf| shelf.lock().expect("pool lock").len())
            .sum()
    }

    /// Snapshot of the pool counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            recycled: self.recycled.load(Ordering::Relaxed),
            discarded: self.discarded.load(Ordering::Relaxed),
            trimmed: self.trimmed.load(Ordering::Relaxed),
            steals: self.steals.load(Ordering::Relaxed),
            capacity: self.capacity(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_miss_then_recycle_then_hit() {
        let pool: BatchPool<ColumnarBatch> = BatchPool::new(4);
        let mut batch = pool.acquire(|| ColumnarBatch::new(1, 2));
        assert_eq!(pool.stats().misses, 1);
        batch.push_sample(
            &recd_data::Sample::builder(
                recd_data::SessionId::new(1),
                recd_data::RequestId::new(1),
                recd_data::Timestamp::from_millis(1),
            )
            .dense(vec![1.0])
            .sparse(vec![vec![1], vec![2, 3]])
            .build(),
        );
        pool.recycle(batch);
        assert_eq!(pool.idle(), 1);

        let recycled = pool.acquire(|| ColumnarBatch::new(1, 2));
        let stats = pool.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.recycled, 1);
        // Reclaimed: no rows, shape preserved.
        assert!(recycled.is_empty());
        assert_eq!(recycled.dense_cols(), 1);
        assert_eq!(recycled.sparse_cols(), 2);
        assert_eq!(stats.reuse_rate(), 0.5);
    }

    #[test]
    fn full_shelf_discards() {
        let pool: BatchPool<ColumnarBatch> = BatchPool::new(1);
        pool.recycle(ColumnarBatch::new(0, 0));
        pool.recycle(ColumnarBatch::new(0, 0));
        let stats = pool.stats();
        assert_eq!(stats.recycled, 1);
        assert_eq!(stats.discarded, 1);
        assert_eq!(pool.idle(), 1);
    }

    #[test]
    fn empty_pool_stats() {
        let stats = PoolStats::default();
        assert_eq!(stats.reuse_rate(), 0.0);
    }

    #[test]
    fn set_capacity_trims_idle_shells_and_caps_future_recycles() {
        let pool: BatchPool<ColumnarBatch> = BatchPool::new(4);
        for _ in 0..4 {
            pool.recycle(ColumnarBatch::new(0, 0));
        }
        assert_eq!(pool.idle(), 4);
        pool.set_capacity(2);
        assert_eq!(pool.capacity(), 2);
        assert_eq!(pool.idle(), 2);
        assert_eq!(pool.stats().trimmed, 2);
        // The reduced capacity governs recycles from now on.
        pool.recycle(ColumnarBatch::new(0, 0));
        assert_eq!(pool.idle(), 2);
        assert_eq!(pool.stats().discarded, 1);
        // A later scale-up restores the headroom: recycles shelve again.
        pool.set_capacity(4);
        assert_eq!(pool.capacity(), 4);
        pool.recycle(ColumnarBatch::new(0, 0));
        assert_eq!(pool.idle(), 3);
    }

    /// A blob scratch of n samples recycled at class = capacity bytes.
    fn blob(bytes: usize) -> BlobScratch {
        BlobScratch(Vec::with_capacity(bytes))
    }

    #[test]
    fn size_hint_prefers_best_fit_and_falls_back_to_largest() {
        let pool: BatchPool<BlobScratch> = BatchPool::new(8);
        pool.recycle(blob(64));
        pool.recycle(blob(4096));
        pool.recycle(blob(512));

        // Best fit: the 512-byte shell is the smallest ≥ 256.
        let fit = pool.acquire_for(0, 256, || blob(0));
        assert_eq!(fit.0.capacity(), 512);
        // Nothing ≥ 1MiB shelved: take the largest (4096) over the tiny one.
        let largest = pool.acquire_for(0, 1 << 20, || blob(0));
        assert_eq!(largest.0.capacity(), 4096);
        let stats = pool.stats();
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.misses, 0);
    }

    #[test]
    fn per_worker_shelves_are_home_first_then_steal() {
        let pool: BatchPool<BlobScratch> = BatchPool::with_shelves(8, 2);
        assert_eq!(pool.shelf_count(), 2);
        // Worker 0 warms its shelf; worker 1's shelf stays empty.
        pool.recycle_for(0, blob(1024));
        pool.recycle_for(0, blob(2048));

        // Worker 1 finds its home shelf empty and steals from worker 0.
        let stolen = pool.acquire_for(1, 0, || blob(0));
        assert!(stolen.0.capacity() >= 1024);
        let stats = pool.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.steals, 1);

        // Worker 0 still hits its own shelf, no steal.
        let home = pool.acquire_for(0, 0, || blob(0));
        assert!(home.0.capacity() >= 1024);
        let stats = pool.stats();
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.steals, 1);

        // Both shelves drained: next acquire allocates.
        let fresh = pool.acquire_for(1, 0, || blob(0));
        assert_eq!(fresh.0.capacity(), 0);
        assert_eq!(pool.stats().misses, 1);
    }

    #[test]
    fn shelf_budget_splits_across_workers() {
        let pool: BatchPool<BlobScratch> = BatchPool::with_shelves(4, 2);
        // Per-shelf budget is ceil(4/2) = 2: a third recycle to the same
        // worker discards even though the global budget has room.
        pool.recycle_for(0, blob(1));
        pool.recycle_for(0, blob(1));
        pool.recycle_for(0, blob(1));
        let stats = pool.stats();
        assert_eq!(stats.recycled, 2);
        assert_eq!(stats.discarded, 1);
        // The sibling shelf still has its own budget.
        pool.recycle_for(1, blob(1));
        assert_eq!(pool.stats().recycled, 3);
        assert_eq!(pool.idle(), 3);
    }
}
