//! Queue-depth-driven dynamic worker scaling: a controller thread samples
//! the pipeline's backpressure gauges on a clock and grows or shrinks the
//! fill and compute pools between configured bounds.
//!
//! The control signal is *sustained* pressure, not instantaneous depth: a
//! queue must sit at or above the high watermark for
//! [`ScalerConfig::sustain_ticks`] consecutive samples before a worker is
//! added, and at or below the low watermark equally long before one is
//! retired. Retirement is cooperative — workers poll a retire counter
//! between (and after) work items, so a scale-down never preempts an
//! in-flight decode or conversion, and because routing is single-threaded
//! and order-restored, **scaling never changes the emitted batches**, only
//! the wall-clock it takes to emit them.
//!
//! Time is abstracted behind [`ScaleClock`] so the controller is fully
//! deterministic under test: the production [`WallClock`] ticks on a period,
//! while [`ManualClock::step`] grants exactly one evaluation and returns
//! only after the controller finished it. The clocks themselves live in
//! `recd-obs` (re-exported here for path stability) because the metrics
//! aggregator polls on the very same abstraction.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

pub use recd_obs::{ManualClock, ScaleClock, WallClock};

/// Dynamic-scaling configuration: pool bounds, pressure watermarks, and the
/// sampling cadence.
#[derive(Clone)]
pub struct ScalerConfig {
    /// Fill pool lower bound (never retired below this).
    pub min_fill: usize,
    /// Fill pool upper bound (never grown above this).
    pub max_fill: usize,
    /// Compute pool lower bound.
    pub min_compute: usize,
    /// Compute pool upper bound.
    pub max_compute: usize,
    /// Queue-depth fraction (of the queue capacity) at or above which a pool
    /// is considered under pressure.
    pub high_watermark: f64,
    /// Queue-depth fraction at or below which a pool is considered idle.
    pub low_watermark: f64,
    /// Consecutive pressured (or idle) ticks required before scaling acts.
    pub sustain_ticks: u32,
    /// Wall-clock sampling period (ignored when a custom clock is
    /// installed).
    pub tick_period: Duration,
    /// Clock override for deterministic tests; `None` uses a [`WallClock`]
    /// ticking every `tick_period`.
    pub clock: Option<Arc<dyn ScaleClock>>,
}

impl ScalerConfig {
    /// Creates a scaling policy with the same `[min, max]` worker bounds for
    /// the fill and compute pools and default watermarks: pressure at ≥ 3/4
    /// of a queue's capacity, idle at ≤ 1/8, acting after 3 sustained ticks,
    /// sampling every 20ms.
    pub fn bounds(min_workers: usize, max_workers: usize) -> Self {
        let min = min_workers.max(1);
        let max = max_workers.max(min);
        Self {
            min_fill: min,
            max_fill: max,
            min_compute: min,
            max_compute: max,
            high_watermark: 0.75,
            low_watermark: 0.125,
            sustain_ticks: 3,
            tick_period: Duration::from_millis(20),
            clock: None,
        }
    }

    /// Overrides the fill pool bounds.
    #[must_use]
    pub fn with_fill_bounds(mut self, min: usize, max: usize) -> Self {
        self.min_fill = min.max(1);
        self.max_fill = max.max(self.min_fill);
        self
    }

    /// Overrides the compute pool bounds.
    #[must_use]
    pub fn with_compute_bounds(mut self, min: usize, max: usize) -> Self {
        self.min_compute = min.max(1);
        self.max_compute = max.max(self.min_compute);
        self
    }

    /// Overrides the pressure watermarks (fractions of queue capacity).
    #[must_use]
    pub fn with_watermarks(mut self, high: f64, low: f64) -> Self {
        self.high_watermark = high.clamp(0.0, 1.0);
        self.low_watermark = low.clamp(0.0, self.high_watermark);
        self
    }

    /// Overrides how many consecutive ticks of pressure (or idleness) are
    /// required before the controller acts.
    #[must_use]
    pub fn with_sustain_ticks(mut self, ticks: u32) -> Self {
        self.sustain_ticks = ticks.max(1);
        self
    }

    /// Overrides the wall-clock sampling period.
    #[must_use]
    pub fn with_tick_period(mut self, period: Duration) -> Self {
        self.tick_period = period;
        self
    }

    /// Installs a custom clock (e.g. a [`ManualClock`] in tests).
    #[must_use]
    pub fn with_clock(mut self, clock: Arc<dyn ScaleClock>) -> Self {
        self.clock = Some(clock);
        self
    }
}

impl std::fmt::Debug for ScalerConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScalerConfig")
            .field("min_fill", &self.min_fill)
            .field("max_fill", &self.max_fill)
            .field("min_compute", &self.min_compute)
            .field("max_compute", &self.max_compute)
            .field("high_watermark", &self.high_watermark)
            .field("low_watermark", &self.low_watermark)
            .field("sustain_ticks", &self.sustain_ticks)
            .field("tick_period", &self.tick_period)
            .field("custom_clock", &self.clock.is_some())
            .finish()
    }
}

/// One recorded pool resize.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScaleEvent {
    /// Clock seconds when the decision was made.
    pub at_seconds: f64,
    /// `"fill"` or `"compute"`.
    pub pool: String,
    /// Worker count before the event.
    pub from: usize,
    /// Worker count the event moves toward.
    pub to: usize,
    /// The queue depth that triggered the decision.
    pub queue_depth: usize,
}

impl ScaleEvent {
    /// Whether this event grew the pool.
    pub fn is_grow(&self) -> bool {
        self.to > self.from
    }
}

/// Shared bookkeeping of one elastic worker pool: the live count, pending
/// cooperative retirements, and every spawned thread's join handle.
#[derive(Debug, Default)]
pub(crate) struct PoolGovernor {
    live: AtomicUsize,
    retiring: AtomicUsize,
    spawned_total: AtomicUsize,
    peak_live: AtomicUsize,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl PoolGovernor {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Registers a newly spawned worker.
    pub(crate) fn adopt(&self, handle: JoinHandle<()>) {
        let live = self.live.fetch_add(1, Ordering::AcqRel) + 1;
        self.peak_live.fetch_max(live, Ordering::AcqRel);
        self.handles.lock().expect("governor lock").push(handle);
    }

    /// Reserves the next worker id (used for thread names).
    pub(crate) fn next_worker_id(&self) -> usize {
        self.spawned_total.fetch_add(1, Ordering::AcqRel)
    }

    /// Currently live workers.
    pub(crate) fn live(&self) -> usize {
        self.live.load(Ordering::Acquire)
    }

    /// High-water mark of live workers.
    pub(crate) fn peak_live(&self) -> usize {
        self.peak_live.load(Ordering::Acquire)
    }

    /// Live workers minus pending retirements — the count the pool is
    /// converging toward.
    pub(crate) fn target(&self) -> usize {
        self.live
            .load(Ordering::Acquire)
            .saturating_sub(self.retiring.load(Ordering::Acquire))
    }

    /// Asks one worker to retire at its next poll.
    pub(crate) fn request_retire(&self) {
        self.retiring.fetch_add(1, Ordering::AcqRel);
    }

    /// Called by workers between items: claims a pending retirement, if any.
    /// A `true` return means "this worker must exit now".
    pub(crate) fn try_retire(&self) -> bool {
        loop {
            let pending = self.retiring.load(Ordering::Acquire);
            if pending == 0 {
                return false;
            }
            if self
                .retiring
                .compare_exchange(pending, pending - 1, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                self.live.fetch_sub(1, Ordering::AcqRel);
                return true;
            }
        }
    }

    /// Called by workers exiting for any non-retirement reason (end of
    /// stream) so the live gauge stays truthful during drain.
    pub(crate) fn note_exit(&self) {
        self.live.fetch_sub(1, Ordering::AcqRel);
    }

    /// Takes every join handle accumulated so far (initial and dynamically
    /// spawned workers alike).
    pub(crate) fn take_handles(&self) -> Vec<JoinHandle<()>> {
        std::mem::take(&mut *self.handles.lock().expect("governor lock"))
    }
}

/// Everything the controller thread needs to steer one pool.
pub(crate) struct PoolControls {
    pub(crate) name: &'static str,
    pub(crate) governor: Arc<PoolGovernor>,
    pub(crate) min: usize,
    pub(crate) max: usize,
    /// Reads the depth of the queue feeding this pool.
    pub(crate) queue_probe: Box<dyn Fn() -> usize + Send>,
    /// Capacity of that queue (the watermark base).
    pub(crate) queue_capacity: usize,
    /// Spawns one more worker into the pool.
    pub(crate) spawn: Box<dyn Fn() -> JoinHandle<()> + Send>,
}

pub(crate) struct ControllerParams {
    pub(crate) config: ScalerConfig,
    pub(crate) clock: Arc<dyn ScaleClock>,
    pub(crate) fill: PoolControls,
    pub(crate) compute: PoolControls,
    pub(crate) events: Arc<Mutex<Vec<ScaleEvent>>>,
    /// Invoked after any resize (grow or shrink) with the pools' new target
    /// sizes, so the service keeps its batch pools sized to the live
    /// in-flight population — smaller after a shrink, restored after a
    /// grow.
    pub(crate) on_resize: Box<dyn Fn(usize, usize) + Send>,
}

/// Per-pool sustained-pressure state.
#[derive(Default)]
struct Pressure {
    above: u32,
    below: u32,
}

/// Spawns the scaling controller thread.
pub(crate) fn spawn_controller(params: ControllerParams) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name("dpp-scaler".to_string())
        .spawn(move || {
            let ControllerParams {
                config,
                clock,
                fill,
                compute,
                events,
                on_resize,
            } = params;
            let mut fill_pressure = Pressure::default();
            let mut compute_pressure = Pressure::default();
            while clock.wait_tick() {
                let mut resized = false;
                resized |= evaluate(&config, &*clock, &fill, &mut fill_pressure, &events);
                resized |= evaluate(&config, &*clock, &compute, &mut compute_pressure, &events);
                if resized {
                    on_resize(fill.governor.target(), compute.governor.target());
                }
            }
        })
        .expect("spawn scaling controller")
}

/// One pool's scaling decision for one tick. Returns `true` when the pool
/// was resized in either direction.
fn evaluate(
    config: &ScalerConfig,
    clock: &dyn ScaleClock,
    pool: &PoolControls,
    pressure: &mut Pressure,
    events: &Arc<Mutex<Vec<ScaleEvent>>>,
) -> bool {
    let depth = (pool.queue_probe)();
    let capacity = pool.queue_capacity.max(1);
    let high = ((config.high_watermark * capacity as f64).ceil() as usize).max(1);
    let low = (config.low_watermark * capacity as f64).floor() as usize;
    if depth >= high {
        pressure.above += 1;
        pressure.below = 0;
    } else if depth <= low {
        pressure.below += 1;
        pressure.above = 0;
    } else {
        pressure.above = 0;
        pressure.below = 0;
    }

    let target = pool.governor.target();
    if pressure.above >= config.sustain_ticks && target < pool.max {
        pool.governor.adopt((pool.spawn)());
        events.lock().expect("scale events lock").push(ScaleEvent {
            at_seconds: clock.now_seconds(),
            pool: pool.name.to_string(),
            from: target,
            to: target + 1,
            queue_depth: depth,
        });
        pressure.above = 0;
        // A grow is a resize too: without reporting it, `on_resize` never
        // fires on the way back up and the batch pools stay stuck at their
        // shrunken capacity after a shrink → grow flap.
        return true;
    }
    if pressure.below >= config.sustain_ticks && target > pool.min {
        pool.governor.request_retire();
        events.lock().expect("scale events lock").push(ScaleEvent {
            at_seconds: clock.now_seconds(),
            pool: pool.name.to_string(),
            from: target,
            to: target - 1,
            queue_depth: depth,
        });
        pressure.below = 0;
        return true;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Harness for driving `evaluate` directly: a pool whose queue depth is
    /// an atomic the test sets, with spawn hooked to a trivial thread.
    fn test_pool(depth: Arc<AtomicUsize>, capacity: usize, min: usize, max: usize) -> PoolControls {
        let governor = Arc::new(PoolGovernor::new());
        governor.adopt(std::thread::spawn(|| {}));
        PoolControls {
            name: "fill",
            governor,
            min,
            max,
            queue_probe: Box::new(move || depth.load(Ordering::Relaxed)),
            queue_capacity: capacity,
            spawn: Box::new(|| std::thread::spawn(|| {})),
        }
    }

    /// Flap regression: alternating pressured / dead-band samples must never
    /// accumulate toward an action — every non-qualifying sample resets both
    /// sustain counters.
    #[test]
    fn dead_band_samples_reset_sustain_counters() {
        let config = ScalerConfig::bounds(1, 4).with_sustain_ticks(2);
        let clock = ManualClock::new();
        let depth = Arc::new(AtomicUsize::new(0));
        let pool = test_pool(Arc::clone(&depth), 8, 1, 4);
        let events = Arc::new(Mutex::new(Vec::new()));
        let mut pressure = Pressure::default();

        // high watermark = ceil(0.75 * 8) = 6, low = floor(0.125 * 8) = 1.
        // Alternate pressured (6) and dead-band (3) samples far longer than
        // sustain_ticks: no grow may ever fire.
        for _ in 0..6 {
            depth.store(6, Ordering::Relaxed);
            assert!(!evaluate(&config, &clock, &pool, &mut pressure, &events));
            depth.store(3, Ordering::Relaxed);
            assert!(!evaluate(&config, &clock, &pool, &mut pressure, &events));
        }
        assert!(
            events.lock().unwrap().is_empty(),
            "alternating high/mid samples must never scale"
        );
        // Same for the idle side: alternating idle / dead-band never shrinks.
        for _ in 0..6 {
            depth.store(0, Ordering::Relaxed);
            assert!(!evaluate(&config, &clock, &pool, &mut pressure, &events));
            depth.store(3, Ordering::Relaxed);
            assert!(!evaluate(&config, &clock, &pool, &mut pressure, &events));
        }
        assert!(events.lock().unwrap().is_empty());
        for handle in pool.governor.take_handles() {
            handle.join().unwrap();
        }
    }

    /// A grow must report itself as a resize so `on_resize` restores batch
    /// pool capacity after a shrink → grow flap (the controller loop only
    /// invokes `on_resize` when `evaluate` returns true).
    #[test]
    fn sustained_pressure_grows_and_reports_the_resize() {
        let config = ScalerConfig::bounds(1, 4).with_sustain_ticks(2);
        let clock = ManualClock::new();
        let depth = Arc::new(AtomicUsize::new(8));
        let pool = test_pool(Arc::clone(&depth), 8, 1, 4);
        let events = Arc::new(Mutex::new(Vec::new()));
        let mut pressure = Pressure::default();

        assert!(!evaluate(&config, &clock, &pool, &mut pressure, &events));
        assert!(
            evaluate(&config, &clock, &pool, &mut pressure, &events),
            "the sustained grow must report a resize"
        );
        assert_eq!(pool.governor.target(), 2);
        {
            let events = events.lock().unwrap();
            assert_eq!(events.len(), 1);
            assert!(events[0].is_grow());
        }

        // And the shrink side still reports too.
        depth.store(0, Ordering::Relaxed);
        assert!(!evaluate(&config, &clock, &pool, &mut pressure, &events));
        assert!(
            evaluate(&config, &clock, &pool, &mut pressure, &events),
            "the sustained shrink must report a resize"
        );
        assert_eq!(pool.governor.target(), 1);
        for handle in pool.governor.take_handles() {
            handle.join().unwrap();
        }
    }

    #[test]
    fn governor_retirement_bookkeeping() {
        let governor = PoolGovernor::new();
        governor.adopt(std::thread::spawn(|| {}));
        governor.adopt(std::thread::spawn(|| {}));
        assert_eq!(governor.live(), 2);
        assert_eq!(governor.peak_live(), 2);
        assert!(!governor.try_retire(), "no retirement requested yet");
        governor.request_retire();
        assert_eq!(governor.target(), 1);
        assert!(governor.try_retire());
        assert!(!governor.try_retire(), "request must be claimed once");
        assert_eq!(governor.live(), 1);
        for handle in governor.take_handles() {
            handle.join().unwrap();
        }
    }
}
