//! The streaming DPP service: a pipeline of fill workers, a deterministic
//! sharding router, and a pool of convert/process workers, connected by
//! bounded channels.
//!
//! ```text
//!                    ┌─ fill worker ─┐          ┌─ compute worker ─┐
//! submit_file ──▶ [input] ─ fill ─ [filled] ─ router ─ [work] ─ O3+O4 ─ [out] ─ sink
//!                    └─ fill worker ─┘   (reorder + shard + coalesce)    (resequence)
//! ```
//!
//! * Every inter-stage payload is a flat [`ColumnarBatch`] — the service
//!   never shuttles per-sample `Vec`s between threads.
//! * **Fill workers** decode DWRF files concurrently (the fill phase),
//!   straight into columnar buffers.
//! * The **router** restores file submission order (decode finishes out of
//!   order), shards rows by the configured [`ShardPolicy`], and coalesces
//!   each shard's rows into `batch_size` chunks. Because routing is
//!   single-threaded and order-restored, batch composition is a pure
//!   function of the submitted file sequence — output does not depend on
//!   worker counts or scheduling.
//! * **Compute workers** run the shared [`PhaseEngine`] (IKJT conversion O3,
//!   deduplicated preprocessing O4) over coalesced chunks concurrently.
//! * The **sink** resequences finished batches per shard so the concatenated
//!   output is deterministic.
//!
//! Every queue is bounded: a slow stage blocks its upstream all the way back
//! to `submit_file`, which is the service's backpressure contract over
//! *in-flight* work. The sink itself collects finished batches until
//! [`DppHandle::finish`] (see its docs for the memory implication).

use crate::channel::{bounded, Gauge, Sender};
use crate::metrics::{DppReport, DppSnapshot, ServiceCounters};
use crate::pool::BatchPool;
use recd_core::ConvertedBatch;
use recd_data::{ColumnarBatch, Schema};
use recd_reader::{
    fill_file_columnar_into, PhaseEngine, PreprocessPipeline, ReaderConfig, ReaderMetrics,
};
use recd_storage::{FileReadScratch, StoredPartition, TableStore};
use std::collections::BTreeMap;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// How the router assigns incoming rows to shard lanes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardPolicy {
    /// Whole files round-robin across shards by submission index — mirrors
    /// the batch [`ReaderTier`](recd_reader::ReaderTier) file assignment, so
    /// with `shards == readers` the emitted batches are identical to the
    /// one-shot tier's.
    FileRoundRobin,
    /// Each row routes by a hash of its session id, so a session's rows
    /// always land in the same shard and stay adjacent in its accumulator.
    /// This preserves the O1 session-affinity property (and therefore the
    /// in-batch dedup factor) even when the incoming file stream interleaves
    /// sessions.
    SessionAffine,
    /// Rows round-robin individually — deliberately scatters sessions. This
    /// is the worst case for in-batch deduplication and exists as the
    /// ablation baseline for [`ShardPolicy::SessionAffine`].
    RowRoundRobin,
}

impl ShardPolicy {
    /// Stable name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            ShardPolicy::FileRoundRobin => "file_round_robin",
            ShardPolicy::SessionAffine => "session_affine",
            ShardPolicy::RowRoundRobin => "row_round_robin",
        }
    }
}

/// Configuration of the streaming service.
#[derive(Debug, Clone)]
pub struct DppConfig {
    /// Batch assembly and dataloader configuration (shared with the batch
    /// reader tier).
    pub reader: ReaderConfig,
    /// Concurrent fill (decode) workers.
    pub fill_workers: usize,
    /// Concurrent convert/process workers.
    pub compute_workers: usize,
    /// Shard lanes rows are routed into.
    pub shards: usize,
    /// Capacity of every inter-stage queue (the backpressure window).
    pub queue_depth: usize,
    /// Row sharding policy.
    pub policy: ShardPolicy,
    /// Builds each compute worker's preprocessing pipeline (pipelines hold
    /// boxed transforms and are not `Clone`).
    pub pipeline_factory: fn() -> PreprocessPipeline,
}

impl DppConfig {
    /// Creates a configuration with production-flavored defaults: 2 fill
    /// workers, 2 compute workers, one shard per compute worker,
    /// session-affine routing, and a backpressure window of 8 items per
    /// queue.
    pub fn new(reader: ReaderConfig) -> Self {
        Self {
            reader,
            fill_workers: 2,
            compute_workers: 2,
            shards: 2,
            queue_depth: 8,
            policy: ShardPolicy::SessionAffine,
            pipeline_factory: PreprocessPipeline::new,
        }
    }

    /// Sets the fill worker count (minimum 1).
    #[must_use]
    pub fn with_fill_workers(mut self, workers: usize) -> Self {
        self.fill_workers = workers.max(1);
        self
    }

    /// Sets the compute worker count (minimum 1).
    #[must_use]
    pub fn with_compute_workers(mut self, workers: usize) -> Self {
        self.compute_workers = workers.max(1);
        self
    }

    /// Sets the shard count (minimum 1).
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Sets the per-queue capacity (minimum 1).
    #[must_use]
    pub fn with_queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth.max(1);
        self
    }

    /// Sets the sharding policy.
    #[must_use]
    pub fn with_policy(mut self, policy: ShardPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the preprocessing pipeline factory.
    #[must_use]
    pub fn with_pipeline_factory(mut self, factory: fn() -> PreprocessPipeline) -> Self {
        self.pipeline_factory = factory;
        self
    }
}

struct FileTask {
    seq: u64,
    path: String,
}

struct FilledFile {
    seq: u64,
    rows: ColumnarBatch,
}

struct WorkItem {
    shard: usize,
    seq: u64,
    rows: ColumnarBatch,
}

struct OutBatch {
    shard: usize,
    seq: u64,
    batch: ConvertedBatch,
}

/// Everything a finished service run produced.
#[derive(Debug)]
pub struct DppOutput {
    /// Emitted batches in deterministic (shard, sequence) order.
    pub batches: Vec<ConvertedBatch>,
    /// Final accounting.
    pub report: DppReport,
}

/// Errors accumulated by a service run.
#[derive(Debug)]
pub struct DppError {
    /// One message per failed fill or conversion, in no particular order.
    pub errors: Vec<String>,
    /// Everything the run still produced: the batches that drained cleanly
    /// plus the accounting, so a partially failed run is not a total loss.
    /// Boxed so the `Result` the service returns stays small.
    pub output: Box<DppOutput>,
}

impl std::fmt::Display for DppError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "streaming DPP run finished with {} error(s): {}",
            self.errors.len(),
            self.errors.first().map(String::as_str).unwrap_or("?")
        )
    }
}

impl std::error::Error for DppError {}

/// The long-running streaming preprocessing service. [`DppService::start`]
/// spawns the worker topology and returns a [`DppHandle`] for feeding it.
#[derive(Debug)]
pub struct DppService;

impl DppService {
    /// Starts the service over a table store. Work arrives via
    /// [`DppHandle::submit_file`]; results and metrics come back through
    /// [`DppHandle::finish`].
    pub fn start(config: DppConfig, store: Arc<TableStore>, schema: Schema) -> DppHandle {
        let counters = Arc::new(ServiceCounters::default());
        let phase_metrics = Arc::new(Mutex::new(ReaderMetrics::default()));
        let errors = Arc::new(Mutex::new(Vec::new()));

        // The swap-buffer arena: every ColumnarBatch in flight — decoded
        // files, shard accumulators, coalesced work chunks — is drawn from
        // and recycled into this one pool, so steady-state batches allocate
        // nothing. Capacity covers the maximum in-flight population (both
        // queues plus every stage's working set) with headroom, so recycles
        // are only discarded during teardown spikes.
        let batch_pool: Arc<BatchPool<ColumnarBatch>> = Arc::new(BatchPool::new(
            config.queue_depth * 2 + config.shards + config.fill_workers + config.compute_workers,
        ));
        // Converted-batch shells flow compute → sink → consumer; the
        // consumer recycles them back through DppHandle::converted_pool.
        let converted_pool: Arc<BatchPool<ConvertedBatch>> = Arc::new(BatchPool::new(
            config.queue_depth * 2 + config.compute_workers,
        ));

        let (input_tx, input_rx) = bounded::<FileTask>(config.queue_depth);
        let (filled_tx, filled_rx) = bounded::<FilledFile>(config.queue_depth);
        let (work_tx, work_rx) = bounded::<WorkItem>(config.queue_depth);
        let (out_tx, out_rx) = bounded::<OutBatch>(config.queue_depth);

        // Passive gauges for live snapshots: they read depths without
        // participating in the channels' disconnect bookkeeping, so failure
        // detection (e.g. after a worker panic) is unaffected by monitoring.
        let gauges = SnapshotSource {
            counters: Arc::clone(&counters),
            input_gauge: input_rx.gauge(),
            filled_gauge: filled_rx.gauge(),
            work_gauge: work_rx.gauge(),
            out_gauge: out_rx.gauge(),
            batch_pool: Arc::clone(&batch_pool),
            converted_pool: Arc::clone(&converted_pool),
        };

        let mut fill_threads = Vec::new();
        for worker in 0..config.fill_workers {
            let input_rx = input_rx.clone();
            let filled_tx = filled_tx.clone();
            let store = Arc::clone(&store);
            let schema = schema.clone();
            let counters = Arc::clone(&counters);
            let phase_metrics = Arc::clone(&phase_metrics);
            let errors = Arc::clone(&errors);
            let batch_pool = Arc::clone(&batch_pool);
            fill_threads.push(
                std::thread::Builder::new()
                    .name(format!("dpp-fill-{worker}"))
                    .spawn(move || {
                        let mut local = ReaderMetrics::default();
                        // Long-lived decode scratch: decompression buffer,
                        // lengths stream, stripe staging batch.
                        let mut scratch = FileReadScratch::default();
                        let fresh =
                            || ColumnarBatch::new(schema.dense_count(), schema.sparse_count());
                        while let Some(task) = input_rx.recv() {
                            // Decode into a pool-recycled batch; misses only
                            // occur while the pipeline's population warms up.
                            let mut rows = batch_pool.acquire(fresh);
                            match fill_file_columnar_into(
                                &store,
                                &schema,
                                &task.path,
                                &mut scratch,
                                &mut rows,
                                &mut local,
                            ) {
                                Ok(()) => {
                                    counters.files_filled.fetch_add(1, Ordering::Relaxed);
                                    // A failed send means the run is being torn
                                    // down; exit quietly.
                                    if filled_tx
                                        .send(FilledFile {
                                            seq: task.seq,
                                            rows,
                                        })
                                        .is_err()
                                    {
                                        break;
                                    }
                                }
                                Err(err) => {
                                    counters.errors.fetch_add(1, Ordering::Relaxed);
                                    errors
                                        .lock()
                                        .expect("error list lock")
                                        .push(format!("fill {}: {err}", task.path));
                                    // The router skips missing seqs via the
                                    // tombstone below so ordering survives
                                    // fill failures. A failed decode leaves
                                    // the batch unspecified; reset it to an
                                    // empty tombstone of the right shape.
                                    rows.reset(schema.dense_count(), schema.sparse_count());
                                    if filled_tx
                                        .send(FilledFile {
                                            seq: task.seq,
                                            rows,
                                        })
                                        .is_err()
                                    {
                                        break;
                                    }
                                }
                            }
                        }
                        *phase_metrics.lock().expect("phase metrics lock") += local;
                    })
                    .expect("spawn fill worker"),
            );
        }
        drop(input_rx);
        drop(filled_tx);

        let router = {
            let config_snapshot = (config.policy, config.shards, config.reader.batch_size);
            let shape = (schema.dense_count(), schema.sparse_count());
            let counters = Arc::clone(&counters);
            let batch_pool = Arc::clone(&batch_pool);
            std::thread::Builder::new()
                .name("dpp-router".to_string())
                .spawn(move || {
                    let (policy, shards, batch_size) = config_snapshot;
                    let (dense_cols, sparse_cols) = shape;
                    // Accumulators come off the pool: at steady state a
                    // shard's next buffer is a batch some compute worker
                    // just finished with.
                    let fresh = || {
                        batch_pool.acquire(|| {
                            ColumnarBatch::with_capacity(dense_cols, sparse_cols, batch_size)
                        })
                    };
                    let mut pending: BTreeMap<u64, ColumnarBatch> = BTreeMap::new();
                    let mut next_seq = 0u64;
                    // Shard accumulators are columnar too: routing a row is a
                    // handful of flat-buffer appends, not a Sample move, and
                    // the buffers amortize across batches.
                    let mut accumulators: Vec<ColumnarBatch> =
                        (0..shards).map(|_| fresh()).collect();
                    let mut shard_seqs = vec![0u64; shards];
                    let mut row_rr = 0usize;
                    let emit =
                        |shard: usize, rows: ColumnarBatch, shard_seqs: &mut Vec<u64>| -> bool {
                            let seq = shard_seqs[shard];
                            shard_seqs[shard] += 1;
                            work_tx.send(WorkItem { shard, seq, rows }).is_ok()
                        };
                    'stream: while let Some(filled) = filled_rx.recv() {
                        pending.insert(filled.seq, filled.rows);
                        // Drain the contiguous prefix in submission order.
                        while let Some(rows) = pending.remove(&next_seq) {
                            let file_seq = next_seq;
                            next_seq += 1;
                            counters
                                .rows_routed
                                .fetch_add(rows.len() as u64, Ordering::Relaxed);
                            for row in 0..rows.len() {
                                let shard = match policy {
                                    ShardPolicy::FileRoundRobin => {
                                        (file_seq % shards as u64) as usize
                                    }
                                    ShardPolicy::SessionAffine => {
                                        (recd_codec::hash_ids(&[rows.session_id(row).raw()])
                                            % shards as u64)
                                            as usize
                                    }
                                    ShardPolicy::RowRoundRobin => {
                                        row_rr = (row_rr + 1) % shards;
                                        row_rr
                                    }
                                };
                                accumulators[shard].push_row_from(&rows, row);
                                if accumulators[shard].len() >= batch_size {
                                    let full = std::mem::replace(&mut accumulators[shard], fresh());
                                    if !emit(shard, full, &mut shard_seqs) {
                                        break 'stream;
                                    }
                                }
                            }
                            // The decoded file's rows have all been copied
                            // into accumulators; its buffers go back to the
                            // fill workers.
                            batch_pool.recycle(rows);
                        }
                    }
                    // End of stream: flush partial accumulators in shard order.
                    for (shard, rows) in accumulators.into_iter().enumerate() {
                        if !rows.is_empty() && !emit(shard, rows, &mut shard_seqs) {
                            break;
                        }
                    }
                })
                .expect("spawn router")
        };

        let mut compute_threads = Vec::new();
        for worker in 0..config.compute_workers {
            let work_rx = work_rx.clone();
            let out_tx = out_tx.clone();
            let mut engine = PhaseEngine::new(config.reader.clone(), (config.pipeline_factory)());
            let counters = Arc::clone(&counters);
            let phase_metrics = Arc::clone(&phase_metrics);
            let errors = Arc::clone(&errors);
            let batch_pool = Arc::clone(&batch_pool);
            let converted_pool = Arc::clone(&converted_pool);
            compute_threads.push(
                std::thread::Builder::new()
                    .name(format!("dpp-compute-{worker}"))
                    .spawn(move || {
                        let mut local = ReaderMetrics::default();
                        while let Some(item) = work_rx.recv() {
                            // Convert into a shell from the converted pool
                            // (hits require a consumer recycling shells),
                            // then hand the drained columnar chunk straight
                            // back to the fill workers.
                            let mut batch = converted_pool.acquire(ConvertedBatch::default);
                            let outcome =
                                engine.run_batch_columnar_into(&item.rows, &mut batch, &mut local);
                            batch_pool.recycle(item.rows);
                            match outcome {
                                Ok(()) => {
                                    counters.batches_out.fetch_add(1, Ordering::Relaxed);
                                    counters
                                        .samples_out
                                        .fetch_add(batch.batch_size as u64, Ordering::Relaxed);
                                    counters.egress_bytes.fetch_add(
                                        (batch.sparse_payload_bytes() + batch.dense.payload_bytes())
                                            as u64,
                                        Ordering::Relaxed,
                                    );
                                    counters.logical_sparse_values.fetch_add(
                                        batch.logical_sparse_values() as u64,
                                        Ordering::Relaxed,
                                    );
                                    counters.stored_sparse_values.fetch_add(
                                        batch.stored_sparse_values() as u64,
                                        Ordering::Relaxed,
                                    );
                                    if out_tx
                                        .send(OutBatch {
                                            shard: item.shard,
                                            seq: item.seq,
                                            batch,
                                        })
                                        .is_err()
                                    {
                                        break;
                                    }
                                }
                                Err(err) => {
                                    counters.errors.fetch_add(1, Ordering::Relaxed);
                                    errors
                                        .lock()
                                        .expect("error list lock")
                                        .push(format!("convert shard {}: {err}", item.shard));
                                    // The shell's contents are unspecified
                                    // after a failed convert, but every
                                    // refill overwrites them — keep the
                                    // warm buffers in the loop.
                                    converted_pool.recycle(batch);
                                }
                            }
                        }
                        *phase_metrics.lock().expect("phase metrics lock") += local;
                    })
                    .expect("spawn compute worker"),
            );
        }
        drop(work_rx);
        drop(out_tx);

        let sink = std::thread::Builder::new()
            .name("dpp-sink".to_string())
            .spawn(move || {
                let mut collected: BTreeMap<(usize, u64), ConvertedBatch> = BTreeMap::new();
                while let Some(out) = out_rx.recv() {
                    collected.insert((out.shard, out.seq), out.batch);
                }
                collected
            })
            .expect("spawn sink");

        DppHandle {
            config,
            input: input_tx,
            next_file_seq: 0,
            counters,
            phase_metrics,
            errors,
            gauges,
            fill_threads,
            router,
            compute_threads,
            sink,
        }
    }
}

/// A detachable, cloneable view of the service's live metrics — safe to hand
/// to a monitoring thread while the [`DppHandle`] keeps feeding (or is
/// consumed by [`DppHandle::finish`]).
#[derive(Clone)]
pub struct SnapshotSource {
    counters: Arc<ServiceCounters>,
    input_gauge: Gauge<FileTask>,
    filled_gauge: Gauge<FilledFile>,
    work_gauge: Gauge<WorkItem>,
    out_gauge: Gauge<OutBatch>,
    batch_pool: Arc<BatchPool<ColumnarBatch>>,
    converted_pool: Arc<BatchPool<ConvertedBatch>>,
}

impl SnapshotSource {
    /// Takes a live snapshot of throughput, progress, and queue depths.
    pub fn snapshot(&self) -> DppSnapshot {
        let elapsed = self.counters.elapsed_seconds();
        let samples = self.counters.samples_out.load(Ordering::Relaxed);
        DppSnapshot {
            elapsed_seconds: elapsed,
            files_submitted: self.counters.files_submitted.load(Ordering::Relaxed),
            files_filled: self.counters.files_filled.load(Ordering::Relaxed),
            rows_routed: self.counters.rows_routed.load(Ordering::Relaxed),
            batches_out: self.counters.batches_out.load(Ordering::Relaxed),
            samples_out: samples,
            samples_per_second: if elapsed > 0.0 {
                samples as f64 / elapsed
            } else {
                0.0
            },
            dedupe_factor: self.counters.dedupe_factor(),
            input_queue_depth: self.input_gauge.len(),
            filled_queue_depth: self.filled_gauge.len(),
            work_queue_depth: self.work_gauge.len(),
            output_queue_depth: self.out_gauge.len(),
            batch_pool: self.batch_pool.stats(),
            converted_pool: self.converted_pool.stats(),
            errors: self.counters.errors.load(Ordering::Relaxed),
        }
    }
}

/// The feeding/monitoring handle of a running [`DppService`].
pub struct DppHandle {
    config: DppConfig,
    input: Sender<FileTask>,
    next_file_seq: u64,
    counters: Arc<ServiceCounters>,
    phase_metrics: Arc<Mutex<ReaderMetrics>>,
    errors: Arc<Mutex<Vec<String>>>,
    gauges: SnapshotSource,
    fill_threads: Vec<JoinHandle<()>>,
    router: JoinHandle<()>,
    compute_threads: Vec<JoinHandle<()>>,
    sink: JoinHandle<BTreeMap<(usize, u64), ConvertedBatch>>,
}

impl DppHandle {
    /// Submits one stored file. Blocks while the fill queue is at capacity —
    /// this is where the service's backpressure reaches the producer.
    ///
    /// File submission order is the service's ordering authority: batch
    /// composition is a pure function of it (never of worker scheduling).
    pub fn submit_file(&mut self, path: impl Into<String>) {
        let task = FileTask {
            seq: self.next_file_seq,
            path: path.into(),
        };
        self.next_file_seq += 1;
        self.counters
            .files_submitted
            .fetch_add(1, Ordering::Relaxed);
        // The only way every receiver disappears is a torn-down run; the
        // caller learns the details from finish().
        let _ = self.input.send(task);
    }

    /// Submits every file of a stored partition, in order.
    pub fn submit_partition(&mut self, partition: &StoredPartition) {
        for file in &partition.files {
            self.submit_file(file.clone());
        }
    }

    /// Takes a live snapshot of throughput, progress, and queue depths.
    pub fn snapshot(&self) -> DppSnapshot {
        self.gauges.snapshot()
    }

    /// Returns a cloneable snapshot source that outlives this handle — hand
    /// it to a monitoring thread while the handle keeps feeding.
    pub fn snapshot_source(&self) -> SnapshotSource {
        self.gauges.clone()
    }

    /// The converted-batch shell pool. A consumer that is done with an
    /// emitted [`ConvertedBatch`] recycles it here; compute workers then
    /// refill the shell's tensors in place instead of allocating, closing
    /// the compute → sink → consumer → compute buffer loop.
    pub fn converted_pool(&self) -> Arc<BatchPool<ConvertedBatch>> {
        Arc::clone(&self.gauges.converted_pool)
    }

    /// Gracefully shuts down: closes the input, lets every stage drain, joins
    /// all workers, and returns the resequenced batches plus the final
    /// report.
    ///
    /// Note on memory: the sink *collects* — the bounded queues cap
    /// in-flight work between stages, but the finished batches accumulate
    /// until this call returns, so a run must fit its output in memory. A
    /// trainer-facing consumer API that streams batches out with per-shard
    /// flow control is the planned next step (see ROADMAP "Open items").
    ///
    /// # Errors
    ///
    /// Returns [`DppError`] (still carrying the report) if any fill or
    /// conversion failed during the run.
    pub fn finish(self) -> Result<DppOutput, DppError> {
        // Closing the input cascades end-of-stream through every stage.
        drop(self.input);
        for handle in self.fill_threads {
            handle.join().expect("fill worker must not panic");
        }
        self.router.join().expect("router must not panic");
        for handle in self.compute_threads {
            handle.join().expect("compute worker must not panic");
        }
        let collected = self.sink.join().expect("sink must not panic");

        let wall_seconds = self.counters.elapsed_seconds();
        let samples = self.counters.samples_out.load(Ordering::Relaxed) as usize;
        let reader_metrics = *self.phase_metrics.lock().expect("phase metrics lock");
        let report = DppReport {
            fill_workers: self.config.fill_workers,
            compute_workers: self.config.compute_workers,
            shards: self.config.shards,
            policy: self.config.policy.name().to_string(),
            wall_seconds,
            samples,
            batches: collected.len(),
            samples_per_second: if wall_seconds > 0.0 {
                samples as f64 / wall_seconds
            } else {
                0.0
            },
            egress_bytes: self.counters.egress_bytes.load(Ordering::Relaxed) as usize,
            dedupe_factor: self.counters.dedupe_factor(),
            peak_input_queue_depth: self.gauges.input_gauge.peak_depth(),
            peak_filled_queue_depth: self.gauges.filled_gauge.peak_depth(),
            peak_work_queue_depth: self.gauges.work_gauge.peak_depth(),
            peak_output_queue_depth: self.gauges.out_gauge.peak_depth(),
            batch_pool: self.gauges.batch_pool.stats(),
            converted_pool: self.gauges.converted_pool.stats(),
            reader_metrics,
        };

        let errors = std::mem::take(&mut *self.errors.lock().expect("error list lock"));
        let output = DppOutput {
            batches: collected.into_values().collect(),
            report,
        };
        if errors.is_empty() {
            Ok(output)
        } else {
            Err(DppError {
                errors,
                output: Box::new(output),
            })
        }
    }
}
