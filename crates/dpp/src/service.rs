//! The streaming DPP service: a pipeline of fill workers, a deterministic
//! sharding router, a pool of convert/process workers, and a fan-out sink,
//! connected by bounded channels.
//!
//! ```text
//!                    ┌─ fill worker ─┐          ┌─ compute worker ─┐        ┌─▶ trainer 0
//! submit_file ──▶ [input] ─ fill ─ [filled] ─ router ─ [work] ─ O3+O4 ─ [out] ─ sink ─▶ trainer 1
//!                    └─ fill worker ─┘   (reorder + shard + coalesce)  (resequence+assign) └─▶ trainer N
//! ```
//!
//! * Every inter-stage payload is a flat [`ColumnarBatch`] — the service
//!   never shuttles per-sample `Vec`s between threads.
//! * **Fill workers** decode DWRF files concurrently (the fill phase),
//!   straight into columnar buffers.
//! * The **router** restores file submission order (decode finishes out of
//!   order), shards rows by the configured [`ShardPolicy`], and coalesces
//!   each shard's rows into `batch_size` chunks. Because routing is
//!   single-threaded and order-restored, batch composition is a pure
//!   function of the submitted file sequence — output does not depend on
//!   worker counts, scheduling, or dynamic scaling.
//! * **Compute workers** run the shared [`PhaseEngine`] (IKJT conversion O3,
//!   deduplicated preprocessing O4) over coalesced chunks concurrently.
//! * The **sink** resequences finished batches per shard and either collects
//!   them (the default) or, with [`DppConfig::with_trainers`], streams them
//!   onto N bounded per-trainer lanes with per-trainer flow control (see
//!   [`crate::sink`]).
//!
//! Every queue is bounded: a slow stage blocks its upstream all the way back
//! to `submit_file`, which is the service's backpressure contract over
//! *in-flight* work. With [`DppConfig::with_scaling`], a controller thread
//! additionally grows and shrinks the fill and compute pools from sustained
//! queue-depth pressure (see [`crate::scaler`]).

use crate::channel::{bounded, Gauge, Receiver, RecvTimeout, Sender};
use crate::checkpoint::DppCheckpoint;
use crate::control::{spawn_pid_controller, CtrlConfig, CtrlShared, PidParams, PumpGate};
use crate::metrics::{
    DppReport, DppSnapshot, ServiceCounters, TrainerLaneReport, TrainerLaneSnapshot,
};
use crate::pool::{BatchPool, BlobScratch};
use crate::scaler::{
    spawn_controller, ControllerParams, PoolControls, PoolGovernor, ScaleClock, ScaleEvent,
    ScalerConfig, WallClock,
};
use crate::sink::{
    run_sink, BarrierState, LaneSender, LaneShared, OutBatch, SinkInput, SinkParams,
    TrainerAssignPolicy, TrainerBatch, TrainerHandle,
};
use recd_chaos::{ChaosCounters, RetryPolicy};
use recd_core::ConvertedBatch;
use recd_data::{ColumnarBatch, Schema};
use recd_obs::{Histogram, HistogramSnapshot};
use recd_reader::{
    fill_file_columnar_into, PhaseEngine, PreprocessPipeline, ReaderConfig, ReaderMetrics,
};
use recd_storage::{FileReadScratch, StorageError, StoredPartition, TableStore};
use std::collections::{BTreeMap, HashSet};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// How often blocked workers wake to check for cooperative retirement.
const WORKER_POLL: Duration = Duration::from_millis(2);

/// Longest a PID-throttled submit waits for the input queue to drain below
/// the controller's setpoint before pushing anyway. The throttle shapes
/// arrival bursts; this cap guarantees liveness no matter what the
/// controller does.
const SUBMIT_THROTTLE_CAP: Duration = Duration::from_secs(2);

/// Most per-worker pool shelves a service creates; beyond this, workers
/// share shelves modulo the count (sharing is correct, just more lock
/// traffic).
const MAX_POOL_SHELVES: usize = 8;

/// Bucket bounds (seconds) of the per-batch convert/process latency
/// histograms — exponential-ish from 10µs to 250ms, which brackets a
/// coalesced batch's compute cost across every workload preset.
const LATENCY_BOUNDS: &[f64] = &[
    1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 1e-1, 2.5e-1,
];

/// How the router assigns incoming rows to shard lanes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardPolicy {
    /// Whole files round-robin across shards by submission index — mirrors
    /// the batch [`ReaderTier`](recd_reader::ReaderTier) file assignment, so
    /// with `shards == readers` the emitted batches are identical to the
    /// one-shot tier's.
    FileRoundRobin,
    /// Each row routes by a hash of its session id, so a session's rows
    /// always land in the same shard and stay adjacent in its accumulator.
    /// This preserves the O1 session-affinity property (and therefore the
    /// in-batch dedup factor) even when the incoming file stream interleaves
    /// sessions.
    SessionAffine,
    /// Rows round-robin individually — deliberately scatters sessions. This
    /// is the worst case for in-batch deduplication and exists as the
    /// ablation baseline for [`ShardPolicy::SessionAffine`].
    RowRoundRobin,
}

impl ShardPolicy {
    /// Stable name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            ShardPolicy::FileRoundRobin => "file_round_robin",
            ShardPolicy::SessionAffine => "session_affine",
            ShardPolicy::RowRoundRobin => "row_round_robin",
        }
    }
}

/// Configuration of the streaming service.
#[derive(Debug, Clone)]
pub struct DppConfig {
    /// Batch assembly and dataloader configuration (shared with the batch
    /// reader tier).
    pub reader: ReaderConfig,
    /// Initial concurrent fill (decode) workers.
    pub fill_workers: usize,
    /// Initial concurrent convert/process workers.
    pub compute_workers: usize,
    /// Shard lanes rows are routed into.
    pub shards: usize,
    /// Capacity of every inter-stage queue (the backpressure window).
    pub queue_depth: usize,
    /// Row sharding policy.
    pub policy: ShardPolicy,
    /// Trainer endpoints fed by the fan-out sink. `0` (the default) keeps
    /// the legacy collect-everything sink that returns batches from
    /// [`DppHandle::finish`].
    pub trainers: usize,
    /// How delivered batches are assigned to trainer lanes.
    pub assign_policy: TrainerAssignPolicy,
    /// Capacity of each per-trainer lane (that trainer's backpressure
    /// window).
    pub trainer_queue_depth: usize,
    /// Dynamic worker scaling policy; `None` keeps the pools fixed.
    pub scaling: Option<ScalerConfig>,
    /// Cross-tier PID control policy; `None` (the default) keeps today's
    /// behaviour byte-identically. When set it supersedes `scaling`: the PID
    /// controller owns the fill/compute pool targets *and* adds the
    /// trainer-lane pump gate plus the PID-throttled submit path (see
    /// [`crate::control`]).
    pub ctrl: Option<CtrlConfig>,
    /// Bounded-retry policy for storage-facing fill reads, with the chaos
    /// counters retries are accounted into. `None` (the default) surfaces
    /// every storage error immediately, as before; set it when running under
    /// fault injection so transient injected get-failures degrade to a short
    /// backoff instead of dropping the file's rows.
    pub chaos_retry: Option<(RetryPolicy, Arc<ChaosCounters>)>,
    /// Builds each compute worker's preprocessing pipeline (pipelines hold
    /// boxed transforms and are not `Clone`).
    pub pipeline_factory: fn() -> PreprocessPipeline,
}

impl DppConfig {
    /// Creates a configuration with production-flavored defaults: 2 fill
    /// workers, 2 compute workers, one shard per compute worker,
    /// session-affine routing, a backpressure window of 8 items per queue,
    /// the collect sink, and no dynamic scaling.
    pub fn new(reader: ReaderConfig) -> Self {
        Self {
            reader,
            fill_workers: 2,
            compute_workers: 2,
            shards: 2,
            queue_depth: 8,
            policy: ShardPolicy::SessionAffine,
            trainers: 0,
            assign_policy: TrainerAssignPolicy::ShardPinned,
            trainer_queue_depth: 8,
            scaling: None,
            ctrl: None,
            chaos_retry: None,
            pipeline_factory: PreprocessPipeline::new,
        }
    }

    /// Sets the fill worker count (minimum 1).
    #[must_use]
    pub fn with_fill_workers(mut self, workers: usize) -> Self {
        self.fill_workers = workers.max(1);
        self
    }

    /// Sets the compute worker count (minimum 1).
    #[must_use]
    pub fn with_compute_workers(mut self, workers: usize) -> Self {
        self.compute_workers = workers.max(1);
        self
    }

    /// Sets the shard count (minimum 1).
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Sets the per-queue capacity (minimum 1).
    #[must_use]
    pub fn with_queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth.max(1);
        self
    }

    /// Sets the sharding policy.
    #[must_use]
    pub fn with_policy(mut self, policy: ShardPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Switches the sink into fan-out mode with `trainers` (minimum 1)
    /// bounded per-trainer lanes; pull batches through the
    /// [`TrainerHandle`]s returned by [`DppHandle::take_trainers`].
    #[must_use]
    pub fn with_trainers(mut self, trainers: usize) -> Self {
        self.trainers = trainers.max(1);
        self
    }

    /// Sets the trainer lane assignment policy (fan-out mode only).
    #[must_use]
    pub fn with_assign_policy(mut self, policy: TrainerAssignPolicy) -> Self {
        self.assign_policy = policy;
        self
    }

    /// Sets each trainer lane's capacity (minimum 1).
    #[must_use]
    pub fn with_trainer_queue_depth(mut self, depth: usize) -> Self {
        self.trainer_queue_depth = depth.max(1);
        self
    }

    /// Enables queue-depth-driven dynamic worker scaling. The initial
    /// `fill_workers` / `compute_workers` counts are clamped into the
    /// policy's bounds at start.
    #[must_use]
    pub fn with_scaling(mut self, scaling: ScalerConfig) -> Self {
        self.scaling = Some(scaling);
        self
    }

    /// Enables the cross-tier PID control loop. The initial worker counts
    /// are clamped into the policy's bounds at start; when both `ctrl` and
    /// `scaling` are set, `ctrl` wins (one controller owns the pools).
    #[must_use]
    pub fn with_ctrl(mut self, ctrl: CtrlConfig) -> Self {
        self.ctrl = Some(ctrl);
        self
    }

    /// Enables bounded-retry with exponential backoff on storage-facing
    /// fill reads, accounting retries into `counters`.
    #[must_use]
    pub fn with_chaos_retry(mut self, policy: RetryPolicy, counters: Arc<ChaosCounters>) -> Self {
        self.chaos_retry = Some((policy, counters));
        self
    }

    /// Sets the preprocessing pipeline factory.
    #[must_use]
    pub fn with_pipeline_factory(mut self, factory: fn() -> PreprocessPipeline) -> Self {
        self.pipeline_factory = factory;
        self
    }
}

/// One unit of fill work: a file to decode, or a partition barrier passing
/// through. Both carry a position in the submission sequence, which is the
/// service's ordering authority.
enum FillTask {
    File {
        seq: u64,
        path: String,
        /// `Some(shard)` pins every row of this file to that shard,
        /// bypassing the [`ShardPolicy`] — the fleet coordinator's explicit
        /// global placement. `None` keeps policy routing.
        shard: Option<usize>,
    },
    Barrier {
        seq: u64,
        id: u64,
    },
}

enum FilledPayload {
    Rows {
        rows: ColumnarBatch,
        shard: Option<usize>,
    },
    Barrier(u64),
}

struct FilledFile {
    seq: u64,
    payload: FilledPayload,
}

struct WorkItem {
    shard: usize,
    seq: u64,
    rows: ColumnarBatch,
}

/// Everything a finished service run produced.
#[derive(Debug)]
pub struct DppOutput {
    /// Emitted batches in deterministic (shard, sequence) order. Empty in
    /// fan-out mode — there the batches went to the trainer lanes instead.
    pub batches: Vec<ConvertedBatch>,
    /// Final accounting.
    pub report: DppReport,
}

/// Errors accumulated by a service run.
#[derive(Debug)]
pub struct DppError {
    /// One message per failed fill or conversion, in no particular order.
    pub errors: Vec<String>,
    /// Everything the run still produced: the batches that drained cleanly
    /// plus the accounting, so a partially failed run is not a total loss.
    /// Boxed so the `Result` the service returns stays small.
    pub output: Box<DppOutput>,
}

impl std::fmt::Display for DppError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "streaming DPP run finished with {} error(s): {}",
            self.errors.len(),
            self.errors.first().map(String::as_str).unwrap_or("?")
        )
    }
}

impl std::error::Error for DppError {}

/// Shared context of every fill worker, initial or dynamically spawned.
struct FillCtx {
    /// This worker's id — its home shelf in the per-worker pools.
    worker: usize,
    input_rx: Receiver<FillTask>,
    filled_tx: Sender<FilledFile>,
    store: Arc<TableStore>,
    schema: Schema,
    counters: Arc<ServiceCounters>,
    phase_metrics: Arc<Mutex<ReaderMetrics>>,
    errors: Arc<Mutex<Vec<String>>>,
    batch_pool: Arc<BatchPool<ColumnarBatch>>,
    blob_pool: Arc<BatchPool<BlobScratch>>,
    governor: Arc<PoolGovernor>,
    chaos_retry: Option<(RetryPolicy, Arc<ChaosCounters>)>,
}

fn fill_worker_loop(ctx: &FillCtx) {
    let mut local = ReaderMetrics::default();
    // Long-lived decode scratch: decompression buffer, lengths stream,
    // stripe staging batch. The blob buffer inside is pool-owned: installed
    // here from the blob pool (a `usize::MAX` hint asks for the largest
    // shelved buffer) and returned on exit, so the allocation survives this
    // worker's retirement and warms its replacement across scaling churn.
    let mut scratch = FileReadScratch::default();
    scratch.install_blob(
        ctx.blob_pool
            .acquire_for(ctx.worker, usize::MAX, BlobScratch::default)
            .0,
    );
    // Size hint for the next decode target: files in one table are near-
    // uniform, so the previous file's row count is the best predictor.
    let mut row_hint = 0usize;
    let mut retired = false;
    loop {
        match ctx.input_rx.recv_timeout(WORKER_POLL) {
            RecvTimeout::Item(FillTask::File { seq, path, shard }) => {
                // Decode into a pool-recycled batch; misses only occur while
                // the pipeline's population warms up.
                let mut rows = ctx.batch_pool.acquire_for(ctx.worker, row_hint, || {
                    ColumnarBatch::new(ctx.schema.dense_count(), ctx.schema.sparse_count())
                });
                // A failed attempt may leave the batch partially decoded, so
                // every attempt starts from an empty shell of the right
                // shape; under chaos retry, transient injected faults then
                // degrade to a short backoff instead of losing the file.
                let mut attempt = || {
                    rows.reset(ctx.schema.dense_count(), ctx.schema.sparse_count());
                    fill_file_columnar_into(
                        &ctx.store,
                        &ctx.schema,
                        &path,
                        &mut scratch,
                        &mut rows,
                        &mut local,
                    )
                };
                let outcome = match &ctx.chaos_retry {
                    Some((policy, chaos)) => {
                        policy.run(Some(chaos), StorageError::is_transient, attempt)
                    }
                    None => attempt(),
                };
                match outcome {
                    Ok(()) => {
                        ctx.counters.files_filled.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(err) => {
                        ctx.counters.errors.fetch_add(1, Ordering::Relaxed);
                        ctx.errors
                            .lock()
                            .expect("error list lock")
                            .push(format!("fill {path}: {err}"));
                        // The router skips empty row sets, so ordering
                        // survives fill failures: reset the batch to an
                        // empty tombstone of the right shape.
                        rows.reset(ctx.schema.dense_count(), ctx.schema.sparse_count());
                    }
                }
                row_hint = rows.len();
                // A failed send means the run is being torn down; exit
                // quietly.
                if ctx
                    .filled_tx
                    .send(FilledFile {
                        seq,
                        payload: FilledPayload::Rows { rows, shard },
                    })
                    .is_err()
                {
                    break;
                }
            }
            RecvTimeout::Item(FillTask::Barrier { seq, id }) => {
                // Barriers don't decode anything — they only need to occupy
                // their position in the restored submission order.
                if ctx
                    .filled_tx
                    .send(FilledFile {
                        seq,
                        payload: FilledPayload::Barrier(id),
                    })
                    .is_err()
                {
                    break;
                }
            }
            RecvTimeout::Timeout => {}
            RecvTimeout::Disconnected => break,
        }
        if ctx.governor.try_retire() {
            retired = true;
            break;
        }
    }
    if !retired {
        ctx.governor.note_exit();
    }
    // Hand the blob allocation back for the next worker generation.
    ctx.blob_pool
        .recycle_for(ctx.worker, BlobScratch(scratch.take_blob()));
    *ctx.phase_metrics.lock().expect("phase metrics lock") += local;
}

/// Shared context of every compute worker.
struct ComputeCtx {
    /// This worker's id — its home shelf in the per-worker pools.
    worker: usize,
    work_rx: Receiver<WorkItem>,
    out_tx: Sender<SinkInput>,
    reader: ReaderConfig,
    pipeline_factory: fn() -> PreprocessPipeline,
    counters: Arc<ServiceCounters>,
    phase_metrics: Arc<Mutex<ReaderMetrics>>,
    errors: Arc<Mutex<Vec<String>>>,
    batch_pool: Arc<BatchPool<ColumnarBatch>>,
    converted_pool: Arc<BatchPool<ConvertedBatch>>,
    governor: Arc<PoolGovernor>,
    convert_hist: Arc<Histogram>,
    process_hist: Arc<Histogram>,
}

fn compute_worker_loop(ctx: &ComputeCtx) {
    let mut engine = PhaseEngine::new(ctx.reader.clone(), (ctx.pipeline_factory)());
    let mut local = ReaderMetrics::default();
    let mut retired = false;
    loop {
        match ctx.work_rx.recv_timeout(WORKER_POLL) {
            RecvTimeout::Item(item) => {
                // Convert into a shell from the converted pool (hits require
                // a consumer recycling shells) sized for this chunk, then
                // hand the drained columnar chunk straight back to the fill
                // workers.
                let mut batch =
                    ctx.converted_pool
                        .acquire_for(0, item.rows.len(), ConvertedBatch::default);
                // Per-batch phase latency = the engine's own phase-CPU delta
                // around this one batch, so the histograms see exactly what
                // the aggregate PhaseMetrics see, bucketed.
                let convert_before = local.convert.cpu_nanos;
                let process_before = local.process.cpu_nanos;
                let outcome = engine.run_batch_columnar_into(&item.rows, &mut batch, &mut local);
                ctx.convert_hist
                    .observe((local.convert.cpu_nanos - convert_before) as f64 / 1e9);
                ctx.process_hist
                    .observe((local.process.cpu_nanos - process_before) as f64 / 1e9);
                ctx.batch_pool.recycle_for(ctx.worker, item.rows);
                match outcome {
                    Ok(()) => {
                        ctx.counters.batches_out.fetch_add(1, Ordering::Relaxed);
                        ctx.counters
                            .samples_out
                            .fetch_add(batch.batch_size as u64, Ordering::Relaxed);
                        ctx.counters.egress_bytes.fetch_add(
                            (batch.sparse_payload_bytes() + batch.dense.payload_bytes()) as u64,
                            Ordering::Relaxed,
                        );
                        ctx.counters
                            .logical_sparse_values
                            .fetch_add(batch.logical_sparse_values() as u64, Ordering::Relaxed);
                        ctx.counters
                            .stored_sparse_values
                            .fetch_add(batch.stored_sparse_values() as u64, Ordering::Relaxed);
                        if ctx
                            .out_tx
                            .send(SinkInput::Batch(OutBatch {
                                shard: item.shard,
                                seq: item.seq,
                                batch,
                            }))
                            .is_err()
                        {
                            break;
                        }
                    }
                    Err(err) => {
                        ctx.counters.errors.fetch_add(1, Ordering::Relaxed);
                        ctx.errors
                            .lock()
                            .expect("error list lock")
                            .push(format!("convert shard {}: {err}", item.shard));
                        // The shell's contents are unspecified after a
                        // failed convert, but every refill overwrites them —
                        // keep the warm buffers in the loop.
                        ctx.converted_pool.recycle(batch);
                        // The sequence slot must still be accounted: the
                        // sink's resequencer would otherwise wait on the
                        // hole forever, stalling the shard's whole tail and
                        // any barrier cut past it.
                        if ctx
                            .out_tx
                            .send(SinkInput::Skip {
                                shard: item.shard,
                                seq: item.seq,
                            })
                            .is_err()
                        {
                            break;
                        }
                    }
                }
            }
            RecvTimeout::Timeout => {}
            RecvTimeout::Disconnected => break,
        }
        if ctx.governor.try_retire() {
            retired = true;
            break;
        }
    }
    if !retired {
        ctx.governor.note_exit();
    }
    *ctx.phase_metrics.lock().expect("phase metrics lock") += local;
}

struct RouterCtx {
    filled_rx: Receiver<FilledFile>,
    work_tx: Sender<WorkItem>,
    out_tx: Sender<SinkInput>,
    policy: ShardPolicy,
    shards: usize,
    batch_size: usize,
    dense_cols: usize,
    sparse_cols: usize,
    counters: Arc<ServiceCounters>,
    batch_pool: Arc<BatchPool<ColumnarBatch>>,
    phase_metrics: Arc<Mutex<ReaderMetrics>>,
    /// Files routed by previous incarnations of this service (a resumed
    /// run); seeds the file → shard rotation so FileRoundRobin placement is
    /// a function of the *cumulative* submission order across a crash.
    files_routed_base: u64,
}

fn router_loop(ctx: RouterCtx) {
    // Accumulators come off the pool: at steady state a shard's next buffer
    // is a batch some compute worker just finished with.
    let fresh = || {
        ctx.batch_pool.acquire(|| {
            ColumnarBatch::with_capacity(ctx.dense_cols, ctx.sparse_cols, ctx.batch_size)
        })
    };
    let mut pending: BTreeMap<u64, FilledPayload> = BTreeMap::new();
    let mut next_seq = 0u64;
    // FileRoundRobin counts *files*, not submission seqs: barriers occupy a
    // seq but must not shift the file → shard rotation.
    let mut files_routed = ctx.files_routed_base;
    // Shard accumulators are columnar too: routing a row is a handful of
    // flat-buffer appends, not a Sample move, and the buffers amortize
    // across batches.
    let mut accumulators: Vec<ColumnarBatch> = (0..ctx.shards).map(|_| fresh()).collect();
    let mut shard_seqs = vec![0u64; ctx.shards];
    let mut row_rr = 0usize;
    let mut local = ReaderMetrics::default();
    let emit = |shard: usize, rows: ColumnarBatch, shard_seqs: &mut Vec<u64>| -> bool {
        let seq = shard_seqs[shard];
        shard_seqs[shard] += 1;
        ctx.work_tx.send(WorkItem { shard, seq, rows }).is_ok()
    };
    'stream: while let Some(filled) = ctx.filled_rx.recv() {
        pending.insert(filled.seq, filled.payload);
        // Drain the contiguous prefix in submission order.
        while let Some(payload) = pending.remove(&next_seq) {
            next_seq += 1;
            match payload {
                FilledPayload::Rows {
                    rows,
                    shard: pinned,
                } => {
                    let file_idx = files_routed;
                    files_routed += 1;
                    ctx.counters
                        .rows_routed
                        .fetch_add(rows.len() as u64, Ordering::Relaxed);
                    for row in 0..rows.len() {
                        let shard = match pinned {
                            // An explicit placement (the fleet coordinator's
                            // file-granular global sharding) overrides the
                            // policy; the file still occupies its rotation
                            // slot so mixed usage stays deterministic.
                            Some(s) => s.min(ctx.shards - 1),
                            None => match ctx.policy {
                                ShardPolicy::FileRoundRobin => {
                                    (file_idx % ctx.shards as u64) as usize
                                }
                                ShardPolicy::SessionAffine => {
                                    (recd_codec::hash_ids(&[rows.session_id(row).raw()])
                                        % ctx.shards as u64)
                                        as usize
                                }
                                ShardPolicy::RowRoundRobin => {
                                    row_rr = (row_rr + 1) % ctx.shards;
                                    row_rr
                                }
                            },
                        };
                        accumulators[shard].push_row_from(&rows, row);
                        if accumulators[shard].len() >= ctx.batch_size {
                            let full = std::mem::replace(&mut accumulators[shard], fresh());
                            if !emit(shard, full, &mut shard_seqs) {
                                break 'stream;
                            }
                        }
                    }
                    // The decoded file's rows have all been copied into
                    // accumulators; its buffers go back to the fill workers.
                    ctx.batch_pool.recycle(rows);
                }
                FilledPayload::Barrier(id) => {
                    // Partition boundary: everything submitted before the
                    // barrier must be emitted, so partial accumulators flush
                    // as short batches (full ones were emitted eagerly).
                    for (shard, accumulator) in accumulators.iter_mut().enumerate() {
                        if !accumulator.is_empty() {
                            let partial = std::mem::replace(accumulator, fresh());
                            local.flushed_partial_batches += 1;
                            if !emit(shard, partial, &mut shard_seqs) {
                                break 'stream;
                            }
                        }
                    }
                    local.barrier_flushes += 1;
                    // The cuts tell the sink exactly which per-shard
                    // sequence prefix precedes this barrier; arrival order
                    // at the sink is irrelevant.
                    if ctx
                        .out_tx
                        .send(SinkInput::Barrier {
                            id,
                            cuts: shard_seqs.clone(),
                        })
                        .is_err()
                    {
                        break 'stream;
                    }
                }
            }
        }
    }
    // End of stream: flush partial accumulators in shard order.
    for (shard, rows) in accumulators.into_iter().enumerate() {
        if !rows.is_empty() && !emit(shard, rows, &mut shard_seqs) {
            break;
        }
    }
    *ctx.phase_metrics.lock().expect("phase metrics lock") += local;
}

/// The long-running streaming preprocessing service. [`DppService::start`]
/// spawns the worker topology and returns a [`DppHandle`] for feeding it.
#[derive(Debug)]
pub struct DppService;

impl DppService {
    /// Starts the service over a table store. Work arrives via
    /// [`DppHandle::submit_file`]; results and metrics come back through
    /// [`DppHandle::finish`] (and, in fan-out mode, through the
    /// [`TrainerHandle`]s from [`DppHandle::take_trainers`]).
    pub fn start(config: DppConfig, store: Arc<TableStore>, schema: Schema) -> DppHandle {
        Self::start_with(config, store, schema, DppCheckpoint::default())
    }

    /// Starts the service continuing from a [`DppCheckpoint`] taken at a
    /// barrier boundary by a previous incarnation: the file → shard rotation,
    /// barrier-id sequence, ingest counters, and — crucially — the
    /// already-ingested partition dedup set all pick up where the crashed
    /// instance stopped. Re-offering a partition the checkpoint already
    /// covers is a no-op, so an at-least-once upstream replay feeds the
    /// trainers each partition exactly once.
    pub fn resume(
        config: DppConfig,
        store: Arc<TableStore>,
        schema: Schema,
        checkpoint: DppCheckpoint,
    ) -> DppHandle {
        Self::start_with(config, store, schema, checkpoint)
    }

    fn start_with(
        config: DppConfig,
        store: Arc<TableStore>,
        schema: Schema,
        checkpoint: DppCheckpoint,
    ) -> DppHandle {
        let counters = Arc::new(ServiceCounters::default());
        // Cumulative feed counters continue across the crash so dashboards
        // and reports see one logical run.
        counters
            .files_submitted
            .store(checkpoint.files_routed, Ordering::Relaxed);
        counters
            .partitions_ingested
            .store(checkpoint.partitions_ingested, Ordering::Relaxed);
        counters
            .duplicate_ingests
            .store(checkpoint.duplicate_ingests, Ordering::Relaxed);
        let phase_metrics = Arc::new(Mutex::new(ReaderMetrics::default()));
        let errors = Arc::new(Mutex::new(Vec::new()));
        let barriers = Arc::new(BarrierState::default());
        let scale_events: Arc<Mutex<Vec<ScaleEvent>>> = Arc::new(Mutex::new(Vec::new()));

        // Worker counts start clamped into the controller bounds (when any
        // exist — the PID controller supersedes the watermark scaler); the
        // pools size for the maximum population they may grow to.
        let (initial_fill, initial_compute, max_fill, max_compute) = if let Some(c) = &config.ctrl {
            (
                config.fill_workers.clamp(c.min_fill, c.max_fill),
                config.compute_workers.clamp(c.min_compute, c.max_compute),
                c.max_fill,
                c.max_compute,
            )
        } else if let Some(s) = &config.scaling {
            (
                config.fill_workers.clamp(s.min_fill, s.max_fill),
                config.compute_workers.clamp(s.min_compute, s.max_compute),
                s.max_fill,
                s.max_compute,
            )
        } else {
            (
                config.fill_workers,
                config.compute_workers,
                config.fill_workers,
                config.compute_workers,
            )
        };

        // The swap-buffer arena: every ColumnarBatch in flight — decoded
        // files, shard accumulators, coalesced work chunks — is drawn from
        // and recycled into this one pool, so steady-state batches allocate
        // nothing. Capacity covers the maximum in-flight population (both
        // queues plus every stage's working set) with headroom; dynamic
        // scale-downs shrink it again. One shelf per fill worker keeps the
        // hot acquire path uncontended and size-class-matched.
        let batch_pool: Arc<BatchPool<ColumnarBatch>> = Arc::new(BatchPool::with_shelves(
            config.queue_depth * 2 + config.shards + max_fill + max_compute,
            max_fill.clamp(1, MAX_POOL_SHELVES),
        ));
        // Converted-batch shells flow compute → sink → consumer; the
        // consumer recycles them back through DppHandle::converted_pool.
        // External consumers recycle from arbitrary threads, so this pool
        // stays single-shelf (size classing still applies).
        let converted_pool: Arc<BatchPool<ConvertedBatch>> =
            Arc::new(BatchPool::new(config.queue_depth * 2 + max_compute));
        // `get_into` blob buffers: pool-owned so decode allocations survive
        // worker retirement/respawn. One per live fill worker plus one spare
        // covers the whole population.
        let blob_pool: Arc<BatchPool<BlobScratch>> = Arc::new(BatchPool::with_shelves(
            max_fill + 1,
            max_fill.clamp(1, MAX_POOL_SHELVES),
        ));

        let (input_tx, input_rx) = bounded::<FillTask>(config.queue_depth);
        let (filled_tx, filled_rx) = bounded::<FilledFile>(config.queue_depth);
        let (work_tx, work_rx) = bounded::<WorkItem>(config.queue_depth);
        let (out_tx, out_rx) = bounded::<SinkInput>(config.queue_depth);

        let input_gauge = input_rx.gauge();
        let filled_gauge = filled_rx.gauge();
        let work_gauge = work_rx.gauge();
        let out_gauge = out_rx.gauge();

        let fill_gov = Arc::new(PoolGovernor::new());
        let compute_gov = Arc::new(PoolGovernor::new());

        // Per-batch compute-phase latency distributions, shared by every
        // compute worker (including dynamically spawned ones) and read by
        // the observability plane.
        let convert_hist = Arc::new(Histogram::new(LATENCY_BOUNDS));
        let process_hist = Arc::new(Histogram::new(LATENCY_BOUNDS));

        // Trainer lanes (fan-out mode).
        let mut lanes = Vec::new();
        let mut trainer_handles = Vec::new();
        let mut lane_shared = Vec::new();
        let mut lane_gauges = Vec::new();
        for trainer in 0..config.trainers {
            let (tx, rx) = bounded::<TrainerBatch>(config.trainer_queue_depth);
            let shared = Arc::new(LaneShared::default());
            lane_gauges.push(rx.gauge());
            trainer_handles.push(TrainerHandle::new(trainer, rx, Arc::clone(&shared)));
            lane_shared.push(Arc::clone(&shared));
            lanes.push(LaneSender { tx, shared });
        }

        // Worker spawners: one closure per pool, usable both for the initial
        // population and by the scaling controller. Each call clones its
        // captured channel ends for the new thread.
        let spawn_fill: Box<dyn Fn() -> JoinHandle<()> + Send> = {
            let input_rx = input_rx.clone();
            let filled_tx = filled_tx.clone();
            let store = Arc::clone(&store);
            let schema = schema.clone();
            let counters = Arc::clone(&counters);
            let phase_metrics = Arc::clone(&phase_metrics);
            let errors = Arc::clone(&errors);
            let batch_pool = Arc::clone(&batch_pool);
            let blob_pool = Arc::clone(&blob_pool);
            let governor = Arc::clone(&fill_gov);
            let chaos_retry = config.chaos_retry.clone();
            Box::new(move || {
                let worker = governor.next_worker_id();
                let ctx = FillCtx {
                    worker,
                    input_rx: input_rx.clone(),
                    filled_tx: filled_tx.clone(),
                    store: Arc::clone(&store),
                    schema: schema.clone(),
                    counters: Arc::clone(&counters),
                    phase_metrics: Arc::clone(&phase_metrics),
                    errors: Arc::clone(&errors),
                    batch_pool: Arc::clone(&batch_pool),
                    blob_pool: Arc::clone(&blob_pool),
                    governor: Arc::clone(&governor),
                    chaos_retry: chaos_retry.clone(),
                };
                std::thread::Builder::new()
                    .name(format!("dpp-fill-{worker}"))
                    .spawn(move || fill_worker_loop(&ctx))
                    .expect("spawn fill worker")
            })
        };
        let spawn_compute: Box<dyn Fn() -> JoinHandle<()> + Send> = {
            let work_rx = work_rx.clone();
            let out_tx = out_tx.clone();
            let reader = config.reader.clone();
            let pipeline_factory = config.pipeline_factory;
            let counters = Arc::clone(&counters);
            let phase_metrics = Arc::clone(&phase_metrics);
            let errors = Arc::clone(&errors);
            let batch_pool = Arc::clone(&batch_pool);
            let converted_pool = Arc::clone(&converted_pool);
            let governor = Arc::clone(&compute_gov);
            let convert_hist = Arc::clone(&convert_hist);
            let process_hist = Arc::clone(&process_hist);
            Box::new(move || {
                let worker = governor.next_worker_id();
                let ctx = ComputeCtx {
                    worker,
                    work_rx: work_rx.clone(),
                    out_tx: out_tx.clone(),
                    reader: reader.clone(),
                    pipeline_factory,
                    counters: Arc::clone(&counters),
                    phase_metrics: Arc::clone(&phase_metrics),
                    errors: Arc::clone(&errors),
                    batch_pool: Arc::clone(&batch_pool),
                    converted_pool: Arc::clone(&converted_pool),
                    governor: Arc::clone(&governor),
                    convert_hist: Arc::clone(&convert_hist),
                    process_hist: Arc::clone(&process_hist),
                };
                std::thread::Builder::new()
                    .name(format!("dpp-compute-{worker}"))
                    .spawn(move || compute_worker_loop(&ctx))
                    .expect("spawn compute worker")
            })
        };

        for _ in 0..initial_fill {
            fill_gov.adopt(spawn_fill());
        }
        for _ in 0..initial_compute {
            compute_gov.adopt(spawn_compute());
        }

        let router = {
            let ctx = RouterCtx {
                filled_rx,
                work_tx,
                out_tx: out_tx.clone(),
                policy: config.policy,
                shards: config.shards,
                batch_size: config.reader.batch_size,
                dense_cols: schema.dense_count(),
                sparse_cols: schema.sparse_count(),
                counters: Arc::clone(&counters),
                batch_pool: Arc::clone(&batch_pool),
                phase_metrics: Arc::clone(&phase_metrics),
                files_routed_base: checkpoint.files_routed,
            };
            std::thread::Builder::new()
                .name("dpp-router".to_string())
                .spawn(move || router_loop(ctx))
                .expect("spawn router")
        };

        let sink = {
            let params = SinkParams {
                out_rx,
                shards: config.shards,
                lanes,
                policy: config.assign_policy,
                // The spillover lets healthy trainers keep receiving while
                // one lane is full; once it overflows the sink blocks and
                // ordinary backpressure takes over.
                park_capacity: config.trainer_queue_depth * config.trainers.max(1),
                barriers: Arc::clone(&barriers),
                converted_pool: Arc::clone(&converted_pool),
            };
            std::thread::Builder::new()
                .name("dpp-sink".to_string())
                .spawn(move || run_sink(params))
                .expect("spawn sink")
        };

        // Exactly one controller takes ownership of the spawners: the PID
        // control loop when configured, else the watermark scaler; without
        // either they are dropped here, releasing their channel clones.
        let ctrl_shared = config
            .ctrl
            .as_ref()
            .map(|_| Arc::new(CtrlShared::default()));
        let controller = if let Some(ctrl) = config.ctrl.clone() {
            let clock: Arc<dyn ScaleClock> = ctrl
                .clock
                .clone()
                .unwrap_or_else(|| Arc::new(WallClock::new(ctrl.tick_period)));
            let resize_batch = Arc::clone(&batch_pool);
            let resize_converted = Arc::clone(&converted_pool);
            let queue_depth = config.queue_depth;
            let shards = config.shards;
            // The lane signal is the *worst* lane's fill fraction: one
            // stalled trainer is a bottleneck even while its siblings drain.
            let lane_probe: Box<dyn Fn() -> (usize, usize) + Send> = {
                let gauges: Vec<Gauge<TrainerBatch>> = lane_gauges.clone();
                let capacity = if gauges.is_empty() {
                    0
                } else {
                    config.trainer_queue_depth
                };
                Box::new(move || (gauges.iter().map(Gauge::len).max().unwrap_or(0), capacity))
            };
            let tail_lag_probe = ctrl
                .tail_lag_probe
                .clone()
                .map(|probe| Box::new(move || probe()) as Box<dyn Fn() -> u64 + Send>);
            let params = PidParams {
                config: ctrl.clone(),
                clock: Arc::clone(&clock),
                shared: Arc::clone(ctrl_shared.as_ref().expect("ctrl shared exists")),
                fill: PoolControls {
                    name: "fill",
                    governor: Arc::clone(&fill_gov),
                    min: ctrl.min_fill,
                    max: ctrl.max_fill,
                    queue_probe: {
                        let gauge = input_gauge.clone();
                        Box::new(move || gauge.len())
                    },
                    queue_capacity: config.queue_depth,
                    spawn: spawn_fill,
                },
                compute: PoolControls {
                    name: "compute",
                    governor: Arc::clone(&compute_gov),
                    min: ctrl.min_compute,
                    max: ctrl.max_compute,
                    queue_probe: {
                        let gauge = work_gauge.clone();
                        Box::new(move || gauge.len())
                    },
                    queue_capacity: config.queue_depth,
                    spawn: spawn_compute,
                },
                lane_probe,
                tail_lag_probe,
                events: Arc::clone(&scale_events),
                on_resize: Box::new(move |fill_target, compute_target| {
                    resize_batch
                        .set_capacity(queue_depth * 2 + shards + fill_target + compute_target);
                    resize_converted.set_capacity(queue_depth * 2 + compute_target);
                }),
            };
            Some((clock, spawn_pid_controller(params)))
        } else {
            match config.scaling.clone() {
                Some(scaling) => {
                    let clock: Arc<dyn ScaleClock> = scaling
                        .clock
                        .clone()
                        .unwrap_or_else(|| Arc::new(WallClock::new(scaling.tick_period)));
                    let resize_batch = Arc::clone(&batch_pool);
                    let resize_converted = Arc::clone(&converted_pool);
                    let queue_depth = config.queue_depth;
                    let shards = config.shards;
                    let params = ControllerParams {
                        config: scaling.clone(),
                        clock: Arc::clone(&clock),
                        fill: PoolControls {
                            name: "fill",
                            governor: Arc::clone(&fill_gov),
                            min: scaling.min_fill,
                            max: scaling.max_fill,
                            queue_probe: {
                                let gauge = input_gauge.clone();
                                Box::new(move || gauge.len())
                            },
                            queue_capacity: config.queue_depth,
                            spawn: spawn_fill,
                        },
                        compute: PoolControls {
                            name: "compute",
                            governor: Arc::clone(&compute_gov),
                            min: scaling.min_compute,
                            max: scaling.max_compute,
                            queue_probe: {
                                let gauge = work_gauge.clone();
                                Box::new(move || gauge.len())
                            },
                            queue_capacity: config.queue_depth,
                            spawn: spawn_compute,
                        },
                        events: Arc::clone(&scale_events),
                        on_resize: Box::new(move |fill_target, compute_target| {
                            resize_batch.set_capacity(
                                queue_depth * 2 + shards + fill_target + compute_target,
                            );
                            resize_converted.set_capacity(queue_depth * 2 + compute_target);
                        }),
                    };
                    Some((clock, spawn_controller(params)))
                }
                None => None,
            }
        };
        drop(input_rx);

        // Passive gauges for live snapshots: they read depths without
        // participating in the channels' disconnect bookkeeping, so failure
        // detection (e.g. after a worker panic) is unaffected by monitoring.
        let gauges = SnapshotSource {
            counters: Arc::clone(&counters),
            input_gauge,
            filled_gauge,
            work_gauge,
            out_gauge,
            batch_pool: Arc::clone(&batch_pool),
            converted_pool: Arc::clone(&converted_pool),
            blob_pool: Arc::clone(&blob_pool),
            fill_gov: Arc::clone(&fill_gov),
            compute_gov: Arc::clone(&compute_gov),
            scale_events: Arc::clone(&scale_events),
            lanes: lane_shared
                .iter()
                .cloned()
                .zip(lane_gauges.iter().cloned())
                .collect(),
            phase_metrics: Arc::clone(&phase_metrics),
            convert_hist,
            process_hist,
        };

        DppHandle {
            config,
            input: input_tx,
            next_file_seq: 0,
            next_barrier_id: checkpoint.next_barrier_id,
            ingested: checkpoint.ingested.into_iter().collect(),
            barriers,
            counters,
            phase_metrics,
            errors,
            gauges,
            trainers: trainer_handles,
            fill_gov,
            compute_gov,
            scale_events,
            lane_shared,
            lane_gauges,
            router,
            sink,
            controller,
            ctrl_shared,
        }
    }
}

/// A detachable, cloneable view of the service's live metrics — safe to hand
/// to a monitoring thread while the [`DppHandle`] keeps feeding (or is
/// consumed by [`DppHandle::finish`]).
#[derive(Clone)]
pub struct SnapshotSource {
    counters: Arc<ServiceCounters>,
    input_gauge: Gauge<FillTask>,
    filled_gauge: Gauge<FilledFile>,
    work_gauge: Gauge<WorkItem>,
    out_gauge: Gauge<SinkInput>,
    batch_pool: Arc<BatchPool<ColumnarBatch>>,
    converted_pool: Arc<BatchPool<ConvertedBatch>>,
    blob_pool: Arc<BatchPool<BlobScratch>>,
    fill_gov: Arc<PoolGovernor>,
    compute_gov: Arc<PoolGovernor>,
    scale_events: Arc<Mutex<Vec<ScaleEvent>>>,
    lanes: Vec<(Arc<LaneShared>, Gauge<TrainerBatch>)>,
    phase_metrics: Arc<Mutex<ReaderMetrics>>,
    convert_hist: Arc<Histogram>,
    process_hist: Arc<Histogram>,
}

impl SnapshotSource {
    /// A copy of the combined per-phase reader accounting across all
    /// workers, as of now.
    pub fn reader_metrics(&self) -> ReaderMetrics {
        *self.phase_metrics.lock().expect("phase metrics lock")
    }

    /// Distribution of per-batch IKJT conversion latency (seconds) across
    /// all compute workers so far.
    pub fn convert_latency(&self) -> HistogramSnapshot {
        self.convert_hist.snapshot()
    }

    /// Distribution of per-batch preprocessing latency (seconds) across all
    /// compute workers so far.
    pub fn process_latency(&self) -> HistogramSnapshot {
        self.process_hist.snapshot()
    }

    /// Takes a live snapshot of throughput, progress, queue depths, worker
    /// pool sizes, and per-trainer lane state.
    pub fn snapshot(&self) -> DppSnapshot {
        let elapsed = self.counters.elapsed_seconds();
        let samples = self.counters.samples_out.load(Ordering::Relaxed);
        let (scale_ups, scale_downs) = {
            let events = self.scale_events.lock().expect("scale events lock");
            let ups = events.iter().filter(|e| e.is_grow()).count() as u64;
            (ups, events.len() as u64 - ups)
        };
        DppSnapshot {
            elapsed_seconds: elapsed,
            files_submitted: self.counters.files_submitted.load(Ordering::Relaxed),
            partitions_ingested: self.counters.partitions_ingested.load(Ordering::Relaxed),
            duplicate_ingests: self.counters.duplicate_ingests.load(Ordering::Relaxed),
            files_filled: self.counters.files_filled.load(Ordering::Relaxed),
            rows_routed: self.counters.rows_routed.load(Ordering::Relaxed),
            batches_out: self.counters.batches_out.load(Ordering::Relaxed),
            samples_out: samples,
            egress_bytes: self.counters.egress_bytes.load(Ordering::Relaxed),
            samples_per_second: if elapsed > 0.0 {
                samples as f64 / elapsed
            } else {
                0.0
            },
            dedupe_factor: self.counters.dedupe_factor(),
            input_queue_depth: self.input_gauge.len(),
            filled_queue_depth: self.filled_gauge.len(),
            work_queue_depth: self.work_gauge.len(),
            output_queue_depth: self.out_gauge.len(),
            fill_workers_live: self.fill_gov.live(),
            compute_workers_live: self.compute_gov.live(),
            scale_ups,
            scale_downs,
            trainers: self
                .lanes
                .iter()
                .enumerate()
                .map(|(trainer, (shared, gauge))| TrainerLaneSnapshot {
                    trainer,
                    queue_depth: gauge.len(),
                    delivered_batches: shared.delivered_batches(),
                    delivered_samples: shared.delivered_samples(),
                    consumed_batches: shared.consumed_batches(),
                })
                .collect(),
            batch_pool: self.batch_pool.stats(),
            converted_pool: self.converted_pool.stats(),
            blob_pool: self.blob_pool.stats(),
            errors: self.counters.errors.load(Ordering::Relaxed),
        }
    }
}

/// The feeding/monitoring handle of a running [`DppService`].
pub struct DppHandle {
    config: DppConfig,
    input: Sender<FillTask>,
    next_file_seq: u64,
    next_barrier_id: u64,
    /// Blob-store prefixes of every partition ingested so far — the replay
    /// dedup set (see [`DppHandle::ingest_partition`]).
    ingested: HashSet<String>,
    barriers: Arc<BarrierState>,
    counters: Arc<ServiceCounters>,
    phase_metrics: Arc<Mutex<ReaderMetrics>>,
    errors: Arc<Mutex<Vec<String>>>,
    gauges: SnapshotSource,
    trainers: Vec<TrainerHandle>,
    fill_gov: Arc<PoolGovernor>,
    compute_gov: Arc<PoolGovernor>,
    scale_events: Arc<Mutex<Vec<ScaleEvent>>>,
    lane_shared: Vec<Arc<LaneShared>>,
    lane_gauges: Vec<Gauge<TrainerBatch>>,
    router: JoinHandle<()>,
    sink: JoinHandle<BTreeMap<(usize, u64), ConvertedBatch>>,
    controller: Option<(Arc<dyn ScaleClock>, JoinHandle<()>)>,
    ctrl_shared: Option<Arc<CtrlShared>>,
}

impl DppHandle {
    /// Submits one stored file. Blocks while the fill queue is at capacity —
    /// this is where the service's backpressure reaches the producer.
    ///
    /// File submission order is the service's ordering authority: batch
    /// composition is a pure function of it (never of worker scheduling).
    pub fn submit_file(&mut self, path: impl Into<String>) {
        self.submit_with_shard(path.into(), None);
    }

    /// Submits one stored file with every row pinned to `shard`, bypassing
    /// the [`ShardPolicy`]. This is the fleet coordinator's feed path: the
    /// coordinator owns the *global* file → shard placement and each host
    /// only ever sees explicit assignments, so batch composition is a pure
    /// function of the coordinator's submission order — independent of which
    /// host (or how many hosts) the shard currently lives on.
    ///
    /// `shard` must be within this service's shard range.
    pub fn submit_file_to_shard(&mut self, path: impl Into<String>, shard: usize) {
        assert!(
            shard < self.config.shards,
            "shard {shard} out of range for a {}-shard service",
            self.config.shards
        );
        self.submit_with_shard(path.into(), Some(shard));
    }

    fn submit_with_shard(&mut self, path: String, shard: Option<usize>) {
        // The PID controller's third actuation surface: shape submission
        // bursts so the input queue rides at the setpoint instead of
        // slamming into its capacity wall. A bounded wait — fill workers
        // drain independently, and the cap pushes through regardless — so
        // this only ever delays a submission, never reorders or drops one:
        // batch composition stays a pure function of submission order.
        if let Some(ctrl) = &self.config.ctrl {
            let threshold = ((self.config.queue_depth as f64 * ctrl.setpoint).ceil() as usize)
                .clamp(1, self.config.queue_depth);
            let mut waited = Duration::ZERO;
            while self.gauges.input_gauge.len() >= threshold && waited < SUBMIT_THROTTLE_CAP {
                std::thread::sleep(WORKER_POLL);
                waited += WORKER_POLL;
            }
        }
        let task = FillTask::File {
            seq: self.next_file_seq,
            path,
            shard,
        };
        self.next_file_seq += 1;
        self.counters
            .files_submitted
            .fetch_add(1, Ordering::Relaxed);
        // The only way every receiver disappears is a torn-down run; the
        // caller learns the details from finish().
        let _ = self.input.send(task);
    }

    /// Submits every file of a stored partition, in order.
    pub fn submit_partition(&mut self, partition: &StoredPartition) {
        for file in &partition.files {
            self.submit_file(file.clone());
        }
    }

    /// Ingests one freshly landed partition — the continuous-ETL feed path:
    /// a streaming ETL stage seals and lands a [`StoredPartition`], then
    /// hands it straight to the running service instead of accumulating a
    /// pre-built table. Equivalent to [`DppHandle::submit_partition`] plus
    /// partition accounting in [`DppSnapshot`] / [`DppReport`]; the same
    /// backpressure contract applies (blocks while the fill queue is full).
    ///
    /// Ingestion is **idempotent**: each partition (keyed by its blob-store
    /// prefix) is consumed at most once per logical run, including across a
    /// checkpoint/resume. A replayed duplicate is skipped, counted in
    /// `duplicate_ingests`, and returns `false` — which is how an
    /// at-least-once upstream replay composes to an exactly-once feed.
    pub fn ingest_partition(&mut self, partition: &StoredPartition) -> bool {
        let key = StoredPartition::prefix(&partition.table, partition.hour);
        if !self.ingested.insert(key) {
            self.counters
                .duplicate_ingests
                .fetch_add(1, Ordering::Relaxed);
            return false;
        }
        self.counters
            .partitions_ingested
            .fetch_add(1, Ordering::Relaxed);
        self.submit_partition(partition);
        true
    }

    /// Captures a [`DppCheckpoint`] of the feed state. Only meaningful right
    /// after a successful [`flush_partition`](Self::flush_partition) — at a
    /// barrier boundary every submitted row has been delivered, so the
    /// service's durable state reduces to these counters plus the ingest
    /// dedup set. Hand the checkpoint to [`DppService::resume`] to continue
    /// after a crash.
    pub fn checkpoint(&self) -> DppCheckpoint {
        let mut ingested: Vec<String> = self.ingested.iter().cloned().collect();
        ingested.sort_unstable();
        DppCheckpoint {
            files_routed: self.counters.files_submitted.load(Ordering::Relaxed),
            partitions_ingested: self.counters.partitions_ingested.load(Ordering::Relaxed),
            duplicate_ingests: self.counters.duplicate_ingests.load(Ordering::Relaxed),
            next_barrier_id: self.next_barrier_id,
            ingested,
        }
    }

    /// Injects a partition barrier and blocks until **every batch from
    /// previously submitted files has been delivered** — pushed onto its
    /// trainer lane in fan-out mode, collected by the sink otherwise. Shard
    /// accumulators holding fewer than `batch_size` rows flush as short
    /// batches, so a partition boundary never strands rows in the pipeline.
    ///
    /// While a flush waits, trainers must keep consuming (a full lane cannot
    /// accept the flushed batches); the spillover buffer absorbs moderate
    /// lag. Flushing an idle service returns immediately. Returns `false`
    /// only if the service tore down before the barrier resolved.
    pub fn flush_partition(&mut self) -> bool {
        self.next_barrier_id += 1;
        let id = self.next_barrier_id;
        let task = FillTask::Barrier {
            seq: self.next_file_seq,
            id,
        };
        self.next_file_seq += 1;
        if self.input.send(task).is_err() {
            return false;
        }
        self.barriers.wait(id)
    }

    /// Takes the per-trainer pull endpoints (fan-out mode; empty when the
    /// service was not configured with [`DppConfig::with_trainers`]). Hand
    /// each one to its trainer thread; dropping a handle marks that trainer
    /// dead and its batches are counted as dropped rather than wedging the
    /// service.
    pub fn take_trainers(&mut self) -> Vec<TrainerHandle> {
        std::mem::take(&mut self.trainers)
    }

    /// Takes a live snapshot of throughput, progress, and queue depths.
    pub fn snapshot(&self) -> DppSnapshot {
        self.gauges.snapshot()
    }

    /// Returns a cloneable snapshot source that outlives this handle — hand
    /// it to a monitoring thread while the handle keeps feeding.
    pub fn snapshot_source(&self) -> SnapshotSource {
        self.gauges.clone()
    }

    /// The ETL pump gate — the PID controller's pump-rate actuation
    /// endpoint. `None` unless the service runs with
    /// [`DppConfig::with_ctrl`]. The pump loop polls
    /// [`PumpGate::pump_allowed`] before each pump and backs off (bounded)
    /// while full trainer lanes hold the gate red.
    pub fn pump_gate(&self) -> Option<PumpGate> {
        self.ctrl_shared
            .as_ref()
            .map(|s| PumpGate::new(Arc::clone(s)))
    }

    /// The PID controller's shared state: live `recd_ctrl_*` metrics
    /// ([`CtrlShared`] implements [`recd_obs::Collector`] — register it on a
    /// metrics registry to export them) and the actuation counters. `None`
    /// unless the service runs with [`DppConfig::with_ctrl`].
    pub fn ctrl_shared(&self) -> Option<Arc<CtrlShared>> {
        self.ctrl_shared.clone()
    }

    /// The converted-batch shell pool. A consumer that is done with an
    /// emitted [`ConvertedBatch`] recycles it here; compute workers then
    /// refill the shell's tensors in place instead of allocating, closing
    /// the compute → sink → consumer → compute buffer loop.
    pub fn converted_pool(&self) -> Arc<BatchPool<ConvertedBatch>> {
        Arc::clone(&self.gauges.converted_pool)
    }

    /// Gracefully shuts down: closes the input, lets every stage drain, joins
    /// all workers (including the scaling controller and any dynamically
    /// spawned workers), and returns the collected batches plus the final
    /// report.
    ///
    /// In fan-out mode the sink streams instead of collecting, so
    /// [`DppOutput::batches`] comes back empty and the drain completes once
    /// the trainer lanes have accepted everything — keep consuming from the
    /// [`TrainerHandle`]s (or drop them) while this call runs. In collect
    /// mode the finished batches accumulate until this call returns, so a
    /// run must fit its output in memory.
    ///
    /// # Errors
    ///
    /// Returns [`DppError`] (still carrying the report) if any fill or
    /// conversion failed during the run.
    pub fn finish(self) -> Result<DppOutput, DppError> {
        let DppHandle {
            config,
            input,
            counters,
            phase_metrics,
            errors,
            gauges,
            trainers,
            fill_gov,
            compute_gov,
            scale_events,
            lane_shared,
            lane_gauges,
            router,
            sink,
            controller,
            ctrl_shared,
            barriers: _,
            next_file_seq: _,
            next_barrier_id: _,
            ingested: _,
        } = self;
        // The controller owns clones of the inter-stage channel ends (inside
        // its spawners); it must exit before downstream stages can observe
        // end-of-stream.
        if let Some((clock, controller)) = controller {
            clock.shutdown();
            controller
                .join()
                .expect("scaling controller must not panic");
        }
        // Closing the input cascades end-of-stream through every stage.
        drop(input);
        // Untaken trainer handles would leave lanes forever unconsumed;
        // dropping them lets the sink account those batches as dropped
        // instead of blocking the drain.
        drop(trainers);
        for handle in fill_gov.take_handles() {
            handle.join().expect("fill worker must not panic");
        }
        router.join().expect("router must not panic");
        for handle in compute_gov.take_handles() {
            handle.join().expect("compute worker must not panic");
        }
        let collected = sink.join().expect("sink must not panic");

        let wall_seconds = counters.elapsed_seconds();
        let samples = counters.samples_out.load(Ordering::Relaxed) as usize;
        let reader_metrics = *phase_metrics.lock().expect("phase metrics lock");
        let report = DppReport {
            fill_workers: config.fill_workers,
            compute_workers: config.compute_workers,
            peak_fill_workers: fill_gov.peak_live(),
            peak_compute_workers: compute_gov.peak_live(),
            shards: config.shards,
            policy: config.policy.name().to_string(),
            assign_policy: config.assign_policy.name().to_string(),
            wall_seconds,
            partitions_ingested: counters.partitions_ingested.load(Ordering::Relaxed),
            duplicate_ingests: counters.duplicate_ingests.load(Ordering::Relaxed),
            samples,
            batches: counters.batches_out.load(Ordering::Relaxed) as usize,
            samples_per_second: if wall_seconds > 0.0 {
                samples as f64 / wall_seconds
            } else {
                0.0
            },
            egress_bytes: counters.egress_bytes.load(Ordering::Relaxed) as usize,
            dedupe_factor: counters.dedupe_factor(),
            peak_input_queue_depth: gauges.input_gauge.peak_depth(),
            peak_filled_queue_depth: gauges.filled_gauge.peak_depth(),
            peak_work_queue_depth: gauges.work_gauge.peak_depth(),
            peak_output_queue_depth: gauges.out_gauge.peak_depth(),
            trainers: lane_shared
                .iter()
                .zip(&lane_gauges)
                .enumerate()
                .map(|(trainer, (shared, gauge))| TrainerLaneReport {
                    trainer,
                    delivered_batches: shared.delivered_batches(),
                    delivered_samples: shared.delivered_samples(),
                    consumed_batches: shared.consumed_batches(),
                    consumed_samples: shared.consumed_samples(),
                    dropped_batches: shared.dropped_batches(),
                    peak_queue_depth: gauge.peak_depth(),
                })
                .collect(),
            scale_events: scale_events.lock().expect("scale events lock").clone(),
            batch_pool: gauges.batch_pool.stats(),
            converted_pool: gauges.converted_pool.stats(),
            blob_pool: gauges.blob_pool.stats(),
            ctrl: ctrl_shared.as_ref().map(|shared| shared.report()),
            reader_metrics,
        };

        let errors = std::mem::take(&mut *errors.lock().expect("error list lock"));
        let output = DppOutput {
            batches: collected.into_values().collect(),
            report,
        };
        if errors.is_empty() {
            Ok(output)
        } else {
            Err(DppError {
                errors,
                output: Box::new(output),
            })
        }
    }
}
