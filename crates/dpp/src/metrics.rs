//! Live counters and final reports for the streaming service.

use crate::control::CtrlReport;
use crate::pool::PoolStats;
use crate::scaler::ScaleEvent;
use recd_reader::ReaderMetrics;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Shared live counters, updated by every stage as work flows through.
/// Gauges for queue depths live on the channels themselves; this struct only
/// holds monotonic counters plus the service start time.
#[derive(Debug)]
pub struct ServiceCounters {
    /// Files accepted into the fill queue.
    pub files_submitted: AtomicU64,
    /// Landed partitions handed to the service via
    /// [`DppHandle::ingest_partition`](crate::DppHandle::ingest_partition)
    /// (the continuous-ETL feed path).
    pub partitions_ingested: AtomicU64,
    /// Partitions offered again after already being ingested — skipped
    /// rather than re-fed, which is what makes a crash-replayed feed
    /// exactly-once from the service's point of view.
    pub duplicate_ingests: AtomicU64,
    /// Files fully decoded by fill workers.
    pub files_filled: AtomicU64,
    /// Rows routed to shard accumulators.
    pub rows_routed: AtomicU64,
    /// Deduplicated batches emitted by compute workers.
    pub batches_out: AtomicU64,
    /// Samples contained in emitted batches.
    pub samples_out: AtomicU64,
    /// Preprocessed tensor bytes sent toward trainers.
    pub egress_bytes: AtomicU64,
    /// Logical sparse values across emitted batches (pre-dedup).
    pub logical_sparse_values: AtomicU64,
    /// Stored sparse values across emitted batches (post-dedup).
    pub stored_sparse_values: AtomicU64,
    /// Stage errors (failed fills or conversions).
    pub errors: AtomicU64,
    started: Instant,
}

impl Default for ServiceCounters {
    fn default() -> Self {
        Self {
            files_submitted: AtomicU64::new(0),
            partitions_ingested: AtomicU64::new(0),
            duplicate_ingests: AtomicU64::new(0),
            files_filled: AtomicU64::new(0),
            rows_routed: AtomicU64::new(0),
            batches_out: AtomicU64::new(0),
            samples_out: AtomicU64::new(0),
            egress_bytes: AtomicU64::new(0),
            logical_sparse_values: AtomicU64::new(0),
            stored_sparse_values: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            started: Instant::now(),
        }
    }
}

impl ServiceCounters {
    /// Seconds since the service started.
    pub fn elapsed_seconds(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Average in-batch dedup factor over everything emitted so far.
    pub fn dedupe_factor(&self) -> f64 {
        let logical = self.logical_sparse_values.load(Ordering::Relaxed);
        let stored = self.stored_sparse_values.load(Ordering::Relaxed);
        if stored == 0 {
            1.0
        } else {
            logical as f64 / stored as f64
        }
    }
}

/// A point-in-time view of one trainer lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrainerLaneSnapshot {
    /// The trainer's id (lane index).
    pub trainer: usize,
    /// Batches delivered but not yet pulled — this trainer's backpressure
    /// gauge.
    pub queue_depth: usize,
    /// Batches the sink has pushed onto the lane so far.
    pub delivered_batches: u64,
    /// Samples the sink has pushed onto the lane so far.
    pub delivered_samples: u64,
    /// Batches the trainer has pulled so far.
    pub consumed_batches: u64,
}

/// Final accounting of one trainer lane, reported in [`DppReport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrainerLaneReport {
    /// The trainer's id (lane index).
    pub trainer: usize,
    /// Batches delivered onto the lane.
    pub delivered_batches: u64,
    /// Samples delivered onto the lane.
    pub delivered_samples: u64,
    /// Batches the trainer pulled.
    pub consumed_batches: u64,
    /// Samples the trainer pulled.
    pub consumed_samples: u64,
    /// Batches discarded because the trainer dropped its handle mid-run.
    pub dropped_batches: u64,
    /// High-water mark of the lane depth — a persistently high peak marks
    /// the slow trainer.
    pub peak_queue_depth: usize,
}

/// A point-in-time view of the running service: throughput, progress, queue
/// depths, elastic pool sizes, and per-trainer lane state. Taken with
/// [`DppHandle::snapshot`](crate::DppHandle::snapshot).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DppSnapshot {
    /// Seconds since the service started.
    pub elapsed_seconds: f64,
    /// Files accepted so far.
    pub files_submitted: u64,
    /// Landed partitions ingested so far (continuous-ETL feed path).
    pub partitions_ingested: u64,
    /// Already-ingested partitions offered again and skipped (replay dedup).
    pub duplicate_ingests: u64,
    /// Files decoded so far.
    pub files_filled: u64,
    /// Rows routed to shards so far.
    pub rows_routed: u64,
    /// Batches emitted so far.
    pub batches_out: u64,
    /// Samples emitted so far.
    pub samples_out: u64,
    /// Preprocessed tensor bytes sent toward trainers so far.
    pub egress_bytes: u64,
    /// Emitted samples per wall-clock second since start.
    pub samples_per_second: f64,
    /// Average in-batch dedup factor of emitted batches.
    pub dedupe_factor: f64,
    /// Current depth of the file (fill input) queue.
    pub input_queue_depth: usize,
    /// Current depth of the decoded-file (router input) queue.
    pub filled_queue_depth: usize,
    /// Current depth of the coalesced-batch (compute input) queue.
    pub work_queue_depth: usize,
    /// Current depth of the output queue.
    pub output_queue_depth: usize,
    /// Fill workers currently live (changes under dynamic scaling).
    pub fill_workers_live: usize,
    /// Compute workers currently live (changes under dynamic scaling).
    pub compute_workers_live: usize,
    /// Pool-grow events so far.
    pub scale_ups: u64,
    /// Pool-shrink events so far.
    pub scale_downs: u64,
    /// Per-trainer lane state (empty outside fan-out mode).
    pub trainers: Vec<TrainerLaneSnapshot>,
    /// Columnar-batch pool counters: fill decode targets, router
    /// accumulators, and coalesced work chunks all draw from and recycle
    /// into this pool.
    pub batch_pool: PoolStats,
    /// Converted-batch shell pool counters: compute workers draw shells
    /// from it and consumers recycle them back through
    /// [`DppHandle::converted_pool`](crate::DppHandle::converted_pool).
    pub converted_pool: PoolStats,
    /// `get_into` blob buffer pool counters: fill workers install a pooled
    /// buffer at spawn and return it at exit, so steady-state decode fetches
    /// allocate nothing even across scaling churn.
    #[serde(default)]
    pub blob_pool: PoolStats,
    /// Stage errors so far.
    pub errors: u64,
}

/// The final accounting of one service run, produced by
/// [`DppHandle::finish`](crate::DppHandle::finish).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DppReport {
    /// Fill workers configured at start.
    pub fill_workers: usize,
    /// Convert/process workers configured at start.
    pub compute_workers: usize,
    /// High-water mark of live fill workers (exceeds `fill_workers` when
    /// dynamic scaling grew the pool).
    pub peak_fill_workers: usize,
    /// High-water mark of live compute workers.
    pub peak_compute_workers: usize,
    /// Shard lanes used.
    pub shards: usize,
    /// Sharding policy name.
    pub policy: String,
    /// Trainer lane assignment policy name (fan-out mode).
    pub assign_policy: String,
    /// Wall-clock seconds from service start to drain.
    pub wall_seconds: f64,
    /// Landed partitions ingested through
    /// [`DppHandle::ingest_partition`](crate::DppHandle::ingest_partition)
    /// (zero outside the continuous-ETL feed path).
    pub partitions_ingested: u64,
    /// Already-ingested partitions offered again and skipped — nonzero after
    /// a crash-replay resume, and exactly the replay overlap size.
    pub duplicate_ingests: u64,
    /// Samples emitted.
    pub samples: usize,
    /// Batches emitted.
    pub batches: usize,
    /// Emitted samples per wall-clock second (the streaming throughput).
    pub samples_per_second: f64,
    /// Preprocessed tensor bytes sent toward trainers.
    pub egress_bytes: usize,
    /// Average in-batch dedup factor of emitted batches.
    pub dedupe_factor: f64,
    /// High-water mark of the fill input queue.
    pub peak_input_queue_depth: usize,
    /// High-water mark of the router input queue.
    pub peak_filled_queue_depth: usize,
    /// High-water mark of the compute input queue.
    pub peak_work_queue_depth: usize,
    /// High-water mark of the output queue.
    pub peak_output_queue_depth: usize,
    /// Per-trainer delivery/consumption accounting (empty outside fan-out
    /// mode).
    pub trainers: Vec<TrainerLaneReport>,
    /// Every pool resize the scaling controller performed, in order.
    pub scale_events: Vec<ScaleEvent>,
    /// Final columnar-batch pool counters; at steady state the reuse rate
    /// approaches 1.0 and the misses count the warmup population.
    pub batch_pool: PoolStats,
    /// Final converted-batch shell pool counters (hits require a consumer
    /// recycling shells back during the run).
    pub converted_pool: PoolStats,
    /// Final `get_into` blob buffer pool counters; misses count exactly the
    /// distinct fill-worker warmups, never per-fill allocations.
    #[serde(default)]
    pub blob_pool: PoolStats,
    /// The PID control loop's final accounting; `None` unless the service
    /// ran with [`DppConfig::with_ctrl`](crate::DppConfig::with_ctrl).
    #[serde(default)]
    pub ctrl: Option<CtrlReport>,
    /// Combined per-phase CPU/byte accounting across all workers.
    pub reader_metrics: ReaderMetrics,
}
