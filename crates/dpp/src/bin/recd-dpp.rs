//! The `recd-dpp` CLI: runs the streaming preprocessing service over a
//! synthetic `recd-datagen` dataset and prints live metrics plus the final
//! report.
//!
//! ```text
//! recd-dpp [--preset tiny|small] [--sessions N] [--batch-size N]
//!          [--fill-workers N] [--workers N] [--shards N] [--queue-depth N]
//!          [--policy session|file|row] [--trainers N]
//!          [--assign pinned|least|rr] [--min-workers N] [--max-workers N]
//!          [--ctrl] [--ctrl-kp F] [--ctrl-ki F] [--ctrl-kd F]
//!          [--tail] [--tail-rate N] [--tail-jitter-ms N]
//!          [--tail-late-frac F] [--tail-late-ms N] [--tail-window-ms N]
//!          [--tail-seal-rows N] [--tail-seed N]
//!          [--hosts M] [--heartbeat-ms N] [--rebalance on|off]
//!          [--chaos-seed N | --chaos-plan SPEC]
//!          [--metrics-port N] [--scrape-once]
//!          [--quiet]
//! ```
//!
//! With `--hosts M` (requires `--tail`) the DPP tier is disaggregated over
//! `M` simulated hosts behind the fault-tolerant control plane: the
//! coordinator owns the file → shard placement, heartbeats every host on
//! the pump clock, heals `kill-host`/`partition-host`/`rejoin-host` chaos
//! faults with bounded replay, and federates every host's metrics registry
//! into the shared `/metrics` endpoint under `host="h<i>"` labels.
//!
//! By default the dataset is batch-landed up front and submitted whole. With
//! `--tail` the CLI instead runs the *continuous* pipeline: a jittered,
//! optionally straggling [`LogTail`] over the raw log stream feeds the
//! streaming ETL stage (incremental join → per-session clustering → hourly
//! seals), and every sealed partition lands and is handed to the running
//! service via `DppHandle::ingest_partition` the moment it appears.
//!
//! Either way, every tier registers into one [`MetricsRegistry`]: the live
//! monitor renders its snapshot line *from the gathered families* (one
//! formatting path for batch and tail mode), `--metrics-port` additionally
//! serves them at `GET /metrics` in the Prometheus text exposition format
//! (port `0` picks an ephemeral one), and a [`MetricsAggregator`] polls the
//! registry in the background to print a derived-rates report at the end.

use recd_chaos::ChaosReport;
use recd_chaos::{FaultAction, FaultInjector, FaultKind, FaultPlan, RetryPolicy};
use recd_core::{ConvertedBatch, DataLoaderConfig};
use recd_datagen::{DatasetGenerator, WorkloadConfig, WorkloadPreset};
use recd_dpp::{
    BatchPool, CtrlConfig, DppConfig, DppFleet, DppReport, DppService, FleetConfig, RecvTimeout,
    ScalerConfig, ShardPolicy, TrainerAssignPolicy, TrainerHandle,
};
use recd_etl::{
    cluster_by_session, EtlService, EtlServiceReport, EtlStreamConfig, ManualClock, TableLayout,
};
use recd_obs::{
    sample_value, AggregatorConfig, Collector, MetricFamily, MetricsAggregator, MetricsRegistry,
    MetricsServer, RegistryFederation, SampleValue, ScaleClock, WallClock,
};
use recd_reader::{PreprocessPipeline, ReaderConfig};
use recd_scribe::{LogTail, TailConfig};
use recd_storage::{NodeConfig, TableStore, TectonicSim};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

struct Args {
    preset: WorkloadPreset,
    sessions: Option<usize>,
    batch_size: usize,
    fill_workers: usize,
    compute_workers: usize,
    shards: usize,
    queue_depth: usize,
    policy: ShardPolicy,
    trainers: usize,
    assign: TrainerAssignPolicy,
    min_workers: Option<usize>,
    max_workers: Option<usize>,
    ctrl: bool,
    ctrl_kp: Option<f64>,
    ctrl_ki: Option<f64>,
    ctrl_kd: Option<f64>,
    tail: bool,
    tail_rate_ms: u64,
    tail_jitter_ms: u64,
    tail_late_frac: f64,
    tail_late_ms: u64,
    tail_window_ms: u64,
    tail_seal_rows: Option<usize>,
    tail_seed: u64,
    hosts: usize,
    heartbeat_ms: u64,
    rebalance: bool,
    chaos_seed: Option<u64>,
    chaos_plan: Option<String>,
    storage_rate: f64,
    storage_bw: f64,
    cache_mb: usize,
    metrics_port: Option<u16>,
    scrape_once: bool,
    quiet: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        preset: WorkloadPreset::Small,
        sessions: None,
        batch_size: 128,
        fill_workers: 2,
        compute_workers: 4,
        shards: 4,
        queue_depth: 8,
        policy: ShardPolicy::SessionAffine,
        trainers: 0,
        assign: TrainerAssignPolicy::ShardPinned,
        min_workers: None,
        max_workers: None,
        ctrl: false,
        ctrl_kp: None,
        ctrl_ki: None,
        ctrl_kd: None,
        tail: false,
        tail_rate_ms: 60_000,
        tail_jitter_ms: 2_000,
        tail_late_frac: 0.0,
        tail_late_ms: 60_000,
        tail_window_ms: 30_000,
        tail_seal_rows: None,
        tail_seed: 0,
        hosts: 0,
        heartbeat_ms: 120_000,
        rebalance: true,
        chaos_seed: None,
        chaos_plan: None,
        storage_rate: 0.0,
        storage_bw: 256.0 * 1024.0 * 1024.0,
        cache_mb: 0,
        metrics_port: None,
        scrape_once: false,
        quiet: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("{flag} requires a value"));
        match flag.as_str() {
            "--preset" => {
                args.preset = match value("--preset")?.as_str() {
                    "tiny" => WorkloadPreset::Tiny,
                    "small" => WorkloadPreset::Small,
                    other => return Err(format!("unknown preset '{other}' (tiny|small)")),
                }
            }
            "--sessions" => {
                args.sessions = Some(
                    value("--sessions")?
                        .parse()
                        .map_err(|e| format!("--sessions: {e}"))?,
                )
            }
            "--batch-size" => {
                args.batch_size = value("--batch-size")?
                    .parse()
                    .map_err(|e| format!("--batch-size: {e}"))?
            }
            "--fill-workers" => {
                args.fill_workers = value("--fill-workers")?
                    .parse()
                    .map_err(|e| format!("--fill-workers: {e}"))?
            }
            "--workers" => {
                args.compute_workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?
            }
            "--shards" => {
                args.shards = value("--shards")?
                    .parse()
                    .map_err(|e| format!("--shards: {e}"))?
            }
            "--queue-depth" => {
                args.queue_depth = value("--queue-depth")?
                    .parse()
                    .map_err(|e| format!("--queue-depth: {e}"))?
            }
            "--policy" => {
                args.policy = match value("--policy")?.as_str() {
                    "session" => ShardPolicy::SessionAffine,
                    "file" => ShardPolicy::FileRoundRobin,
                    "row" => ShardPolicy::RowRoundRobin,
                    other => return Err(format!("unknown policy '{other}' (session|file|row)")),
                }
            }
            "--trainers" => {
                args.trainers = value("--trainers")?
                    .parse()
                    .map_err(|e| format!("--trainers: {e}"))?
            }
            "--assign" => {
                args.assign = match value("--assign")?.as_str() {
                    "pinned" => TrainerAssignPolicy::ShardPinned,
                    "least" => TrainerAssignPolicy::LeastLoaded,
                    "rr" => TrainerAssignPolicy::RoundRobin,
                    other => {
                        return Err(format!("unknown assign policy '{other}' (pinned|least|rr)"))
                    }
                }
            }
            "--min-workers" => {
                args.min_workers = Some(
                    value("--min-workers")?
                        .parse()
                        .map_err(|e| format!("--min-workers: {e}"))?,
                )
            }
            "--max-workers" => {
                args.max_workers = Some(
                    value("--max-workers")?
                        .parse()
                        .map_err(|e| format!("--max-workers: {e}"))?,
                )
            }
            "--ctrl" => args.ctrl = true,
            "--ctrl-kp" => {
                args.ctrl_kp = Some(
                    value("--ctrl-kp")?
                        .parse()
                        .map_err(|e| format!("--ctrl-kp: {e}"))?,
                )
            }
            "--ctrl-ki" => {
                args.ctrl_ki = Some(
                    value("--ctrl-ki")?
                        .parse()
                        .map_err(|e| format!("--ctrl-ki: {e}"))?,
                )
            }
            "--ctrl-kd" => {
                args.ctrl_kd = Some(
                    value("--ctrl-kd")?
                        .parse()
                        .map_err(|e| format!("--ctrl-kd: {e}"))?,
                )
            }
            "--tail" => args.tail = true,
            "--tail-rate" => {
                args.tail_rate_ms = value("--tail-rate")?
                    .parse()
                    .map_err(|e| format!("--tail-rate: {e}"))?
            }
            "--tail-jitter-ms" => {
                args.tail_jitter_ms = value("--tail-jitter-ms")?
                    .parse()
                    .map_err(|e| format!("--tail-jitter-ms: {e}"))?
            }
            "--tail-late-frac" => {
                args.tail_late_frac = value("--tail-late-frac")?
                    .parse()
                    .map_err(|e| format!("--tail-late-frac: {e}"))?
            }
            "--tail-late-ms" => {
                args.tail_late_ms = value("--tail-late-ms")?
                    .parse()
                    .map_err(|e| format!("--tail-late-ms: {e}"))?
            }
            "--tail-window-ms" => {
                args.tail_window_ms = value("--tail-window-ms")?
                    .parse()
                    .map_err(|e| format!("--tail-window-ms: {e}"))?
            }
            "--tail-seal-rows" => {
                args.tail_seal_rows = Some(
                    value("--tail-seal-rows")?
                        .parse()
                        .map_err(|e| format!("--tail-seal-rows: {e}"))?,
                )
            }
            "--tail-seed" => {
                args.tail_seed = value("--tail-seed")?
                    .parse()
                    .map_err(|e| format!("--tail-seed: {e}"))?
            }
            "--hosts" => {
                args.hosts = value("--hosts")?
                    .parse()
                    .map_err(|e| format!("--hosts: {e}"))?
            }
            "--heartbeat-ms" => {
                args.heartbeat_ms = value("--heartbeat-ms")?
                    .parse()
                    .map_err(|e| format!("--heartbeat-ms: {e}"))?
            }
            "--rebalance" => {
                args.rebalance = match value("--rebalance")?.as_str() {
                    "on" => true,
                    "off" => false,
                    other => return Err(format!("unknown rebalance mode '{other}' (on|off)")),
                }
            }
            "--chaos-seed" => {
                args.chaos_seed = Some(
                    value("--chaos-seed")?
                        .parse()
                        .map_err(|e| format!("--chaos-seed: {e}"))?,
                )
            }
            "--chaos-plan" => args.chaos_plan = Some(value("--chaos-plan")?),
            "--storage-rate" => {
                args.storage_rate = value("--storage-rate")?
                    .parse()
                    .map_err(|e| format!("--storage-rate: {e}"))?
            }
            "--storage-bw" => {
                args.storage_bw = value("--storage-bw")?
                    .parse()
                    .map_err(|e| format!("--storage-bw: {e}"))?
            }
            "--cache-mb" => {
                args.cache_mb = value("--cache-mb")?
                    .parse()
                    .map_err(|e| format!("--cache-mb: {e}"))?
            }
            "--metrics-port" => {
                args.metrics_port = Some(
                    value("--metrics-port")?
                        .parse()
                        .map_err(|e| format!("--metrics-port: {e}"))?,
                )
            }
            "--scrape-once" => args.scrape_once = true,
            "--quiet" => args.quiet = true,
            "--help" | "-h" => {
                println!(
                    "recd-dpp: streaming DPP service demo\n\
                     \n  --preset tiny|small      workload preset (default small)\
                     \n  --sessions N             override session count\
                     \n  --batch-size N           training batch size (default 128)\
                     \n  --fill-workers N         fill (decode) workers (default 2)\
                     \n  --workers N              convert/process workers (default 4)\
                     \n  --shards N               shard lanes (default 4)\
                     \n  --queue-depth N          backpressure window per queue (default 8)\
                     \n  --policy session|file|row  sharding policy (default session)\
                     \n  --trainers N             fan out to N simulated trainers (default 0 = collect)\
                     \n  --assign pinned|least|rr trainer lane assignment (default pinned)\
                     \n  --min-workers N          enable dynamic scaling: pool lower bound\
                     \n  --max-workers N          enable dynamic scaling: pool upper bound\
                     \n  --ctrl                   close the control loop: a cross-tier PID\
                     \n                           controller samples trainer lanes, DPP queues,\
                     \n                           and ETL tail lag, resizes both worker pools,\
                     \n                           and gates the ETL pump (replaces the watermark\
                     \n                           scaler when both are enabled; exports the\
                     \n                           recd_ctrl_* metric families)\
                     \n  --ctrl-kp F              proportional gain (default 2.0; requires --ctrl)\
                     \n  --ctrl-ki F              integral gain (default 1.0; requires --ctrl)\
                     \n  --ctrl-kd F              derivative gain (default 0.0; requires --ctrl)\
                     \n  --tail                   continuous mode: tail the raw log stream through\
                     \n                           the streaming ETL (join/cluster/seal/land) and\
                     \n                           ingest partitions as they land\
                     \n  --tail-rate N            simulated ms of log time per pump step (default 60000)\
                     \n  --tail-jitter-ms N       arrival jitter bound (default 2000)\
                     \n  --tail-late-frac F       fraction of straggling records (default 0)\
                     \n  --tail-late-ms N         extra straggler delay (default 60000)\
                     \n  --tail-window-ms N       ETL out-of-order window (default 30000)\
                     \n  --tail-seal-rows N       seal an open hour early at N rows\
                     \n  --tail-seed N            arrival-process seed (default 0)\
                     \n  --hosts M                disaggregate the DPP tier over M simulated hosts\
                     \n                           behind the fault-tolerant control plane (requires\
                     \n                           --tail; default 0 = single in-process service)\
                     \n  --heartbeat-ms N         fleet heartbeat timeout: a host silent strictly\
                     \n                           longer than this is declared dead (default 120000)\
                     \n  --rebalance on|off       work-stealing shard rebalance at every barrier\
                     \n                           (default on)\
                     \n  --chaos-seed N           run a seeded fault plan against the continuous\
                     \n                           pipeline (requires --tail): storage brown-out,\
                     \n                           transient get/put failures, trainer kill+stall\
                     \n                           (when --trainers > 1), ETL pump crash-restart\
                     \n  --chaos-plan SPEC        run an explicit fault plan (requires --tail);\
                     \n                           semicolon-separated at_ms:kind[:args] entries:\
                     \n                           stall-trainer:LANE:MS | kill-trainer:LANE |\
                     \n                           slow-storage:FACTOR:MS | fail-get:COUNT |\
                     \n                           fail-put:COUNT | crash-pump | kill-host:HOST |\
                     \n                           partition-host:HOST:MS | rejoin-host:HOST\
                     \n                           (host faults require --hosts > 1)\
                     \n  --storage-rate N         enable the per-node storage queue model: each of\
                     \n                           the 8 simulated nodes services N ops/s, so blob\
                     \n                           get/put latency emerges from queue depth and\
                     \n                           transfer size (default 0 = flat-latency store)\
                     \n  --storage-bw BYTES       per-node storage bandwidth in bytes/s (default\
                     \n                           268435456 = 256 MiB/s; requires --storage-rate)\
                     \n  --cache-mb N             enable an N-MiB LRU blob cache in front of the\
                     \n                           storage nodes (default 0 = off); hits bypass the\
                     \n                           node queues\
                     \n  --metrics-port N         serve GET /metrics (Prometheus text format) on\
                     \n                           127.0.0.1:N while running (0 = ephemeral port)\
                     \n  --scrape-once            self-scrape /metrics once before shutdown and\
                     \n                           print the exposition (requires --metrics-port)\
                     \n  --quiet                  suppress live snapshots"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag '{other}' (try --help)")),
        }
    }
    if args.scrape_once && args.metrics_port.is_none() {
        return Err("--scrape-once requires --metrics-port".to_string());
    }
    if (args.ctrl_kp.is_some() || args.ctrl_ki.is_some() || args.ctrl_kd.is_some()) && !args.ctrl {
        return Err("--ctrl-kp/--ctrl-ki/--ctrl-kd require --ctrl".to_string());
    }
    if (args.chaos_seed.is_some() || args.chaos_plan.is_some()) && !args.tail {
        return Err(
            "--chaos-seed/--chaos-plan require --tail (faults drive the continuous pipeline)"
                .to_string(),
        );
    }
    if args.chaos_seed.is_some() && args.chaos_plan.is_some() {
        return Err("--chaos-seed and --chaos-plan are mutually exclusive".to_string());
    }
    if !(args.storage_rate.is_finite() && args.storage_rate >= 0.0) {
        return Err("--storage-rate must be a finite, non-negative ops/s figure".to_string());
    }
    if !(args.storage_bw.is_finite() && args.storage_bw > 0.0) {
        return Err("--storage-bw must be a finite, positive bytes/s figure".to_string());
    }
    if args.hosts > 0 && !args.tail {
        return Err(
            "--hosts requires --tail (the fleet's heartbeats ride the continuous pump clock)"
                .to_string(),
        );
    }
    Ok(args)
}

/// Builds the blob store for this invocation: 8 simulated nodes, with the
/// per-node queue model when `--storage-rate` is set and the LRU cache tier
/// when `--cache-mb` is set.
fn build_blob_store(args: &Args) -> TectonicSim {
    let mut sim = TectonicSim::new(8);
    if args.storage_rate > 0.0 {
        sim = sim.with_node_config(NodeConfig::new(args.storage_rate, args.storage_bw));
    }
    if args.cache_mb > 0 {
        sim = sim.with_cache(args.cache_mb * 1024 * 1024);
    }
    sim
}

/// Prints the machine-parseable storage derived lines for whichever storage
/// tiers this invocation enabled; `scripts/bench_snapshot.sh` and the CI
/// chaos smoke read them.
fn print_storage_derived(sim: &TectonicSim) {
    if sim.cache_enabled() {
        println!(
            "derived storage_cache_hit_ratio {:.4}",
            sim.cache_stats().hit_ratio()
        );
    }
    if sim.queueing_enabled() {
        println!(
            "derived storage_node_wait_ms {:.4}",
            sim.mean_queue_wait().as_secs_f64() * 1e3
        );
    }
}

/// Rejects fault plans that name fleet hosts this invocation does not have.
/// A host fault in single-service mode would be a silent no-op, and an
/// out-of-range host index can never fire — both are operator error, so both
/// exit 2 up front instead of quietly running a faultless plan.
fn validate_host_faults(plan: &FaultPlan, hosts: usize) {
    for fault in plan.faults() {
        let target = match fault.kind {
            FaultKind::KillHost { host }
            | FaultKind::PartitionHost { host, .. }
            | FaultKind::RejoinHost { host } => host,
            _ => continue,
        };
        if hosts < 2 {
            eprintln!(
                "recd-dpp: --chaos-plan: `{fault}` is a host fault; host faults require --hosts > 1"
            );
            std::process::exit(2);
        }
        if target >= hosts {
            eprintln!(
                "recd-dpp: --chaos-plan: `{fault}` names host {target}, but --hosts {hosts} \
                 only has hosts 0..{hosts}"
            );
            std::process::exit(2);
        }
    }
}

/// Renders one live-monitor line from gathered metric families — the single
/// formatting path for batch and tail mode. The ETL fragment appears exactly
/// when the ETL tier is registered (its families are present), so the line
/// shape is decided by the registry contents, not by a mode flag.
fn live_line(families: &[MetricFamily]) -> String {
    let v =
        |name: &str, labels: &[(&str, &str)]| sample_value(families, name, labels).unwrap_or(0.0);
    let lanes: Vec<String> = families
        .iter()
        .find(|f| f.name == "recd_dpp_trainer_queue_depth")
        .map(|family| {
            family
                .samples
                .iter()
                .filter_map(|s| match s.value {
                    SampleValue::Scalar(depth) => Some(format!("{}", depth as u64)),
                    SampleValue::Histogram(_) => None,
                })
                .collect()
        })
        .unwrap_or_default();
    let etl_part = if families.iter().any(|f| f.name == "recd_etl_tail_lag_ms") {
        format!(
            "  etl lag={:.0}s open={}h/{}s sealed={} late={}",
            v("recd_etl_tail_lag_ms", &[]) / 1_000.0,
            v("recd_etl_open_hours", &[]) as u64,
            v("recd_etl_open_sessions", &[]) as u64,
            v("recd_etl_sealed_partitions_total", &[]) as u64,
            v("recd_etl_late_drops_total", &[]) as u64,
        )
    } else {
        String::new()
    };
    let fleet_part = if families.iter().any(|f| f.name == "recd_fleet_hosts_live") {
        format!(
            "  fleet {}/{} live fwd={} dup={}",
            v("recd_fleet_hosts_live", &[]) as u64,
            v("recd_fleet_hosts_total", &[]) as u64,
            v("recd_fleet_forwarded_batches_total", &[]) as u64,
            v("recd_fleet_duplicate_batches_dropped_total", &[]) as u64,
        )
    } else {
        String::new()
    };
    format!(
        "  [{:6.2}s] {:>8} samples  {:>9.0} samples/s  dedup {:>5.2}x  queues fill={} route={} work={} out={}  workers {}f/{}c{}{}{}",
        v("recd_dpp_uptime_seconds", &[]),
        v("recd_dpp_samples_out_total", &[]) as u64,
        v("recd_dpp_samples_per_second", &[]),
        v("recd_dpp_dedupe_factor", &[]),
        v("recd_dpp_queue_depth", &[("queue", "input")]) as u64,
        v("recd_dpp_queue_depth", &[("queue", "filled")]) as u64,
        v("recd_dpp_queue_depth", &[("queue", "work")]) as u64,
        v("recd_dpp_queue_depth", &[("queue", "output")]) as u64,
        v("recd_dpp_workers_live", &[("pool", "fill")]) as u64,
        v("recd_dpp_workers_live", &[("pool", "compute")]) as u64,
        if lanes.is_empty() {
            String::new()
        } else {
            format!("  lanes [{}]", lanes.join(","))
        },
        etl_part,
        fleet_part,
    )
}

/// A control command for a simulated trainer-lane consumer.
enum LaneCmd {
    /// Stop consuming for the given duration (backpressure builds).
    Stall(Duration),
    /// Drain whatever is queued, drop the handle (tombstoning the lane),
    /// acknowledge, and exit.
    Kill(std::sync::mpsc::Sender<()>),
}

/// One simulated trainer: a consumer thread pulling its lane with a short
/// timeout so chaos commands interleave with consumption. Returns
/// `(trainer id, batches, samples)` on exit.
struct TrainerLane {
    cmd: std::sync::mpsc::Sender<LaneCmd>,
    join: std::thread::JoinHandle<(usize, u64, u64)>,
}

impl TrainerLane {
    /// `pool` is the converted-shell pool batches recycle into; fleet lanes
    /// pass `None` (their batches come from many hosts' pools, so shells are
    /// simply dropped).
    fn spawn(trainer: TrainerHandle, pool: Option<Arc<BatchPool<ConvertedBatch>>>) -> Self {
        let (cmd, cmd_rx) = std::sync::mpsc::channel::<LaneCmd>();
        let join = std::thread::spawn(move || {
            let id = trainer.id();
            let mut batches = 0u64;
            let mut samples = 0u64;
            loop {
                match cmd_rx.try_recv() {
                    Ok(LaneCmd::Stall(pause)) => std::thread::sleep(pause),
                    Ok(LaneCmd::Kill(ack)) => {
                        while let Some(item) = trainer.try_recv() {
                            batches += 1;
                            samples += item.batch.batch_size as u64;
                            if let Some(pool) = &pool {
                                pool.recycle(item.batch);
                            }
                        }
                        drop(trainer);
                        let _ = ack.send(());
                        return (id, batches, samples);
                    }
                    Err(_) => {}
                }
                match trainer.recv_timeout(Duration::from_millis(1)) {
                    RecvTimeout::Item(item) => {
                        batches += 1;
                        samples += item.batch.batch_size as u64;
                        if let Some(pool) = &pool {
                            pool.recycle(item.batch);
                        }
                    }
                    RecvTimeout::Timeout => {}
                    RecvTimeout::Disconnected => return (id, batches, samples),
                }
            }
        });
        Self { cmd, join }
    }

    /// Pauses consumption for `ms` of wall time (asynchronous).
    fn stall(&self, ms: u64) {
        let _ = self.cmd.send(LaneCmd::Stall(Duration::from_millis(ms)));
    }

    /// Kills the lane and waits for the consumer to acknowledge the drop —
    /// called only at pump boundaries, when the sink is quiescent, so no
    /// delivery races the teardown.
    fn kill(self) -> std::thread::JoinHandle<(usize, u64, u64)> {
        let (ack, ack_rx) = std::sync::mpsc::channel();
        let _ = self.cmd.send(LaneCmd::Kill(ack));
        let _ = ack_rx.recv();
        self.join
    }
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("recd-dpp: {message}");
            std::process::exit(2);
        }
    };
    if args.hosts > 0 {
        run_fleet(args);
        return;
    }

    // Dataset. Batch mode: generate, cluster by session (O2), land into the
    // table store up front. Tail mode: keep the raw log stream — the
    // streaming ETL stage will join, cluster, and land it incrementally.
    let mut workload = WorkloadConfig::preset(args.preset);
    if let Some(sessions) = args.sessions {
        workload = workload.with_sessions(sessions);
    }
    let generator = DatasetGenerator::new(workload);
    let store = Arc::new(TableStore::new(build_blob_store(&args), 64, 2));
    let (schema, stored, tail_records) = if args.tail {
        let (records, partition) = generator.generate_logs();
        println!(
            "dataset: tailing {} raw log records ({} samples once joined), jitter {}ms, {:.0}% stragglers (+{}ms), seed {}",
            records.len(),
            partition.len(),
            args.tail_jitter_ms,
            args.tail_late_frac * 100.0,
            args.tail_late_ms,
            args.tail_seed,
        );
        (partition.schema, None, Some(records))
    } else {
        let partition = generator.generate_partition();
        let clustered = cluster_by_session(&partition.samples);
        let (stored, storage_report) =
            store.land_partition(&partition.schema, "cli", 0, &clustered);
        println!(
            "dataset: {} samples in {} files ({} stored bytes)",
            clustered.len(),
            stored.files.len(),
            storage_report.stored_bytes
        );
        (partition.schema, Some(stored), None)
    };

    // Chaos engine: a seeded or explicit fault plan executed against the
    // continuous pipeline's live knobs. Storage faults apply directly through
    // the shared TectonicSim; trainer/pump faults surface as actions the
    // pump loop applies at barrier boundaries.
    let mut chaos = args
        .chaos_plan
        .as_deref()
        .map(|spec| {
            let plan = FaultPlan::parse(spec).unwrap_or_else(|message| {
                eprintln!("recd-dpp: --chaos-plan: {message}");
                std::process::exit(2);
            });
            validate_host_faults(&plan, args.hosts);
            plan
        })
        .or_else(|| {
            args.chaos_seed.map(|seed| {
                // Faults fire inside the middle 80% of the log's time span,
                // while the pipeline is actually moving data.
                let horizon = tail_records
                    .as_ref()
                    .and_then(|records| records.iter().map(|r| r.timestamp().as_millis()).max())
                    .unwrap_or(0);
                FaultPlan::seeded(seed, horizon, args.trainers)
            })
        })
        .map(|plan| {
            println!(
                "chaos: {} faults scheduled (seed {}): {plan}",
                plan.len(),
                plan.seed
            );
            FaultInjector::new(&plan, store.blob_store().clone())
        });
    let chaos_retry = chaos
        .as_ref()
        .map(|injector| (RetryPolicy::storage_default(), injector.counters()));

    // Service topology.
    let mut config = DppConfig::new(ReaderConfig::new(
        args.batch_size,
        DataLoaderConfig::from_schema(&schema),
    ))
    .with_fill_workers(args.fill_workers)
    .with_compute_workers(args.compute_workers)
    .with_shards(args.shards)
    .with_queue_depth(args.queue_depth)
    .with_policy(args.policy)
    .with_pipeline_factory(|| PreprocessPipeline::standard(1 << 20, 64));
    if args.trainers > 0 {
        config = config
            .with_trainers(args.trainers)
            .with_assign_policy(args.assign);
    }
    if let Some((policy, counters)) = &chaos_retry {
        config = config.with_chaos_retry(*policy, Arc::clone(counters));
    }
    if args.min_workers.is_some() || args.max_workers.is_some() {
        let min = args.min_workers.unwrap_or(1);
        let max = args
            .max_workers
            .unwrap_or_else(|| min.max(args.fill_workers).max(args.compute_workers));
        config = config.with_scaling(
            ScalerConfig::bounds(min, max).with_tick_period(Duration::from_millis(20)),
        );
    }

    // Continuous mode: the streaming ETL service that feeds the handle. The
    // tail and stream configs are hoisted out of the closure because a
    // chaos-injected pump crash rebuilds the service from them (plus the
    // latest checkpoint and a replay copy of the raw records). Built before
    // the DPP service so `--ctrl` can wire the tail-lag probe into the
    // controller.
    let tail_config = TailConfig::default()
        .with_jitter_ms(args.tail_jitter_ms)
        .with_lateness(args.tail_late_frac, args.tail_late_ms)
        .with_seed(args.tail_seed);
    let mut etl_config =
        EtlStreamConfig::new(TableLayout::ClusteredBySession).with_window_ms(args.tail_window_ms);
    if let Some(rows) = args.tail_seal_rows {
        etl_config = etl_config.with_size_watermark(rows);
    }
    let replay_records = if chaos.is_some() {
        tail_records.clone()
    } else {
        None
    };
    let mut etl = tail_records.map(|records| {
        println!(
            "continuous: window {}ms, grace {}ms, {}, {}ms of log time per pump",
            etl_config.window_ms,
            etl_config.seal_grace_ms,
            args.tail_seal_rows
                .map_or("hour-boundary seals only".to_string(), |rows| format!(
                    "size watermark {rows} rows"
                )),
            args.tail_rate_ms,
        );
        let mut service = EtlService::new(
            LogTail::new(records, &tail_config),
            etl_config,
            Arc::clone(&store),
            schema.clone(),
            "tail",
        );
        if let Some((policy, counters)) = &chaos_retry {
            service = service.with_chaos_retry(*policy, Arc::clone(counters));
        }
        service
    });

    // The closed control loop: a cross-tier PID controller replaces the
    // watermark scaler, samples every queue tier, and (in tail mode) reads
    // the ETL gauges so tail lag can veto trainer backpressure.
    if args.ctrl {
        let min = args.min_workers.unwrap_or(1);
        let max = args
            .max_workers
            .unwrap_or_else(|| min.max(args.fill_workers).max(args.compute_workers));
        let kp = args.ctrl_kp.unwrap_or(2.0);
        let ki = args.ctrl_ki.unwrap_or(1.0);
        let kd = args.ctrl_kd.unwrap_or(0.0);
        let mut ctrl = CtrlConfig::bounds(min, max)
            .with_gains(kp, ki, kd)
            .with_tick_period(Duration::from_millis(20));
        if let Some(service) = &etl {
            let gauges = service.gauges();
            ctrl = ctrl
                .with_tail_lag_probe(Arc::new(move || gauges.tail_lag_ms.load(Ordering::Relaxed)));
        }
        println!(
            "control: PID kp={kp} ki={ki} kd={kd}, workers in [{min}, {max}], setpoint {:.2}, lane high {:.2}, lag escape {}ms",
            ctrl.setpoint, ctrl.lane_high, ctrl.lag_high_ms
        );
        config = config.with_ctrl(ctrl);
    }

    println!(
        "service: {} fill + {} compute workers, {} shards, policy {}, queue depth {}",
        args.fill_workers,
        args.compute_workers,
        args.shards,
        args.policy.name(),
        args.queue_depth
    );
    if args.trainers > 0 {
        println!(
            "fan-out: {} trainers, assign policy {}",
            args.trainers,
            args.assign.name()
        );
    }
    if let Some(scaling) = &config.scaling {
        println!(
            "scaling: workers elastic in [{}, {}], watermarks {:.0}%/{:.0}%, every {:?}",
            scaling.min_fill,
            scaling.max_fill,
            scaling.high_watermark * 100.0,
            scaling.low_watermark * 100.0,
            scaling.tick_period
        );
    }

    let mut handle = DppService::start(config, Arc::clone(&store), schema.clone());
    // The pump gate (ctrl only): the controller's red/green light the pump
    // loop consults before advancing the tail clock.
    let pump_gate = handle.pump_gate();

    // The observability plane: every tier registers into one registry. The
    // live monitor, the /metrics endpoint, and the aggregator all read the
    // same gathered families.
    let registry = Arc::new(MetricsRegistry::new());
    registry.register(Arc::new(handle.snapshot_source()) as Arc<dyn Collector>);
    if let Some(ctrl) = handle.ctrl_shared() {
        registry.register(ctrl as Arc<dyn Collector>);
    }
    registry.register(Arc::new(store.blob_store().clone()) as Arc<dyn Collector>);
    if let Some(service) = &etl {
        registry.register(service.gauges() as Arc<dyn Collector>);
    }
    if let Some(injector) = &chaos {
        registry.register(injector.counters() as Arc<dyn Collector>);
    }

    // Exposition endpoint and background aggregator.
    let server = args.metrics_port.map(|port| {
        let server = MetricsServer::start(Arc::clone(&registry), port)
            .unwrap_or_else(|err| panic!("recd-dpp: bind metrics port {port}: {err}"));
        println!("metrics: serving http://{}/metrics", server.local_addr());
        server
    });
    let aggregator = Arc::new(MetricsAggregator::new(
        Arc::clone(&registry),
        AggregatorConfig::default(),
    ));
    // Bracket the run with explicit polls so even runs shorter than the
    // polling period produce a rate window in the final report.
    let run_started = std::time::Instant::now();
    aggregator.poll_at(0.0);
    let aggregator_handle = aggregator
        .spawn(Arc::new(WallClock::new(Duration::from_millis(100))) as Arc<dyn ScaleClock>);

    // Simulated trainers: each consumes its own lane as fast as it can and
    // recycles the shells so compute workers refill warm buffers. The lane
    // harness doubles as the chaos engine's substrate: a stall pauses
    // consumption (backpressure builds), a kill drains + drops the handle
    // (the lane tombstones and live traffic re-routes to survivors).
    let converted_pool = handle.converted_pool();
    let mut lanes: Vec<Option<TrainerLane>> = handle
        .take_trainers()
        .into_iter()
        .map(|trainer| {
            Some(TrainerLane::spawn(
                trainer,
                Some(Arc::clone(&converted_pool)),
            ))
        })
        .collect();
    let mut killed: Vec<std::thread::JoinHandle<(usize, u64, u64)>> = Vec::new();

    // Live metrics monitor: gathers the registry and renders the shared
    // `live_line` formatting path — identical output pipeline in batch and
    // tail mode.
    let done = Arc::new(AtomicBool::new(false));
    let monitor = if args.quiet {
        None
    } else {
        let done = Arc::clone(&done);
        let registry = Arc::clone(&registry);
        Some(std::thread::spawn(move || {
            while !done.load(Ordering::Relaxed) {
                std::thread::sleep(Duration::from_millis(100));
                println!("{}", live_line(&registry.gather()));
            }
        }))
    };

    // Feed the service: batch mode submits the pre-landed table whole;
    // continuous mode pumps the tail clock, landing and ingesting each
    // sealed partition as it appears.
    let etl_output = match (etl.take(), stored) {
        (Some(mut service), _) => {
            let mut clock = ManualClock::new();
            // The exactly-once anchor: a checkpoint taken at every pump
            // boundary (sealed queue drained, landing record consistent). A
            // crash rewinds the tail to this cursor; replayed partitions
            // re-land idempotently and the running DPP service dedups the
            // re-offers, so the trainer feed never double-counts.
            let mut checkpoint = service.checkpoint();
            let mut sink = |landed: &recd_storage::StoredPartition,
                            _sealed: &recd_etl::TablePartition| {
                handle.ingest_partition(landed);
            };
            while !service.tail_drained() {
                let now = clock.advance(args.tail_rate_ms.max(1));
                if let Some(injector) = chaos.as_mut() {
                    // Actions apply at the top of the iteration — the
                    // previous pump's deliveries are done, so kills and
                    // crashes never race an in-flight hand-off.
                    for action in injector.poll(now) {
                        match action {
                            FaultAction::StallTrainer { lane, ms } => {
                                if let Some(Some(lane)) = lanes.get(lane) {
                                    lane.stall(ms);
                                }
                            }
                            FaultAction::KillTrainer { lane } => {
                                if let Some(slot) = lanes.get_mut(lane) {
                                    if let Some(lane) = slot.take() {
                                        killed.push(lane.kill());
                                    }
                                }
                            }
                            // Host-level faults need a fleet; the
                            // single-service path has no hosts to kill.
                            // `run_fleet` handles them when --hosts > 0.
                            FaultAction::KillHost { .. }
                            | FaultAction::PartitionHost { .. }
                            | FaultAction::RejoinHost { .. } => {}
                            FaultAction::CrashEtlPump => {
                                let (policy, counters) =
                                    chaos_retry.as_ref().expect("chaos retry wired");
                                counters.note_pump_crash();
                                let records = replay_records
                                    .clone()
                                    .expect("chaos keeps a replay copy of the tail");
                                let recovery_started = std::time::Instant::now();
                                service = EtlService::resume_from(
                                    LogTail::new(records, &tail_config),
                                    etl_config,
                                    Arc::clone(&store),
                                    schema.clone(),
                                    "tail",
                                    checkpoint.clone(),
                                )
                                .with_chaos_retry(*policy, Arc::clone(counters));
                                counters.note_resume(recovery_started.elapsed());
                            }
                        }
                    }
                }
                // The controller's backpressure signal: when trainer lanes
                // are the bottleneck the gate goes red and the pump holds
                // (bounded, so the tail-lag escape hatch or a draining lane
                // always reopens it).
                if let Some(gate) = &pump_gate {
                    let waited = std::time::Instant::now();
                    while !gate.pump_allowed() && waited.elapsed() < Duration::from_secs(2) {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                }
                service.pump(now, &mut sink);
                checkpoint = service.checkpoint();
            }
            Some(service.finish(&mut sink))
        }
        (None, Some(stored)) => {
            handle.submit_partition(&stored);
            None
        }
        (None, None) => unreachable!("batch mode always pre-lands a partition"),
    };
    let result = handle.finish();
    done.store(true, Ordering::Relaxed);
    if let Some(monitor) = monitor {
        monitor.join().expect("monitor thread");
    }
    aggregator_handle.stop();
    aggregator.poll_at(run_started.elapsed().as_secs_f64());
    for thread in killed {
        let (trainer, batches, samples) = thread.join().expect("trainer thread");
        println!(
            "trainer {trainer}: consumed {batches} batches / {samples} samples (killed by chaos)"
        );
    }
    for lane in lanes.into_iter().flatten() {
        let (trainer, batches, samples) = lane.join.join().expect("trainer thread");
        println!("trainer {trainer}: consumed {batches} batches / {samples} samples");
    }

    if let Some(out) = &etl_output {
        print_etl_summary(&out.report);
    }

    let report = match result {
        Ok(output) => {
            print_dpp_report(&output.report);
            output.report
        }
        Err(err) => {
            eprintln!("recd-dpp: {err}");
            std::process::exit(1);
        }
    };

    if let Some(injector) = chaos.as_mut() {
        print_chaos_summary(&injector.finish());
    }
    // Machine-parseable sustained end-to-end throughput over the whole run —
    // scripts/bench_snapshot.sh lifts this line into BENCH_pipeline.json.
    if args.tail {
        if let Some(rate) = aggregator.derived().records_per_second {
            println!("derived continuous_records_per_second {rate:.1}");
        }
        // Sustained end-to-end throughput: total delivered samples over the
        // whole wall-clock run, the figure the bench gate tracks.
        println!(
            "derived pipeline_records_per_second {:.1}",
            report.samples as f64 / run_started.elapsed().as_secs_f64().max(1e-9)
        );
    }
    print_storage_derived(store.blob_store());
    if !args.quiet {
        println!("\n{}", aggregator.report());
    }
    if args.scrape_once {
        let addr = server
            .as_ref()
            .expect("--scrape-once requires --metrics-port")
            .local_addr();
        match recd_obs::scrape(addr) {
            Ok(body) => {
                println!("\nscrape of http://{addr}/metrics ({} bytes):", body.len());
                print!("{body}");
            }
            Err(err) => {
                eprintln!("recd-dpp: scrape failed: {err}");
                std::process::exit(1);
            }
        }
    }
    if let Some(server) = server {
        server.shutdown();
    }
}

/// Continuous mode over a disaggregated fleet: the same tail → streaming-ETL
/// → land schedule as single-service `--tail`, but every landed partition is
/// ingested by a [`DppFleet`] of `--hosts` simulated hosts behind the
/// fault-tolerant control plane. Host faults (`kill-host`,
/// `partition-host`, `rejoin-host`) route to the coordinator; every pump
/// ends in a fleet-wide barrier so batch composition stays a pure function
/// of the landing schedule; the per-host registries federate into the
/// shared metrics endpoint under `host="h<i>"` labels.
fn run_fleet(args: Args) {
    let mut workload = WorkloadConfig::preset(args.preset);
    if let Some(sessions) = args.sessions {
        workload = workload.with_sessions(sessions);
    }
    let generator = DatasetGenerator::new(workload);
    let store = Arc::new(TableStore::new(build_blob_store(&args), 64, 2));
    let (records, partition) = generator.generate_logs();
    println!(
        "dataset: tailing {} raw log records ({} samples once joined) into a {}-host fleet, jitter {}ms, seed {}",
        records.len(),
        partition.len(),
        args.hosts,
        args.tail_jitter_ms,
        args.tail_seed,
    );
    let schema = partition.schema;

    // Chaos engine: seeded plans use the fleet variant (host death, control-
    // plane partition, rejoin) on top of the storage faults.
    let mut chaos = args
        .chaos_plan
        .as_deref()
        .map(|spec| {
            let plan = FaultPlan::parse(spec).unwrap_or_else(|message| {
                eprintln!("recd-dpp: --chaos-plan: {message}");
                std::process::exit(2);
            });
            validate_host_faults(&plan, args.hosts);
            plan
        })
        .or_else(|| {
            args.chaos_seed.map(|seed| {
                let horizon = records
                    .iter()
                    .map(|r| r.timestamp().as_millis())
                    .max()
                    .unwrap_or(0);
                FaultPlan::seeded_fleet(seed, horizon, args.trainers, args.hosts)
            })
        })
        .map(|plan| {
            println!(
                "chaos: {} faults scheduled (seed {}): {plan}",
                plan.len(),
                plan.seed
            );
            FaultInjector::new(&plan, store.blob_store().clone())
        });
    let chaos_retry = chaos
        .as_ref()
        .map(|injector| (RetryPolicy::storage_default(), injector.counters()));

    // Host template: every host runs the full shard set; the coordinator
    // routes each file to the host owning its shard.
    let mut host_config = DppConfig::new(ReaderConfig::new(
        args.batch_size,
        DataLoaderConfig::from_schema(&schema),
    ))
    .with_fill_workers(args.fill_workers)
    .with_compute_workers(args.compute_workers)
    .with_shards(args.shards)
    .with_queue_depth(args.queue_depth)
    .with_policy(args.policy)
    .with_pipeline_factory(|| PreprocessPipeline::standard(1 << 20, 64));
    if let Some((policy, counters)) = &chaos_retry {
        host_config = host_config.with_chaos_retry(*policy, Arc::clone(counters));
    }
    if args.min_workers.is_some() || args.max_workers.is_some() {
        let min = args.min_workers.unwrap_or(1);
        let max = args
            .max_workers
            .unwrap_or_else(|| min.max(args.fill_workers).max(args.compute_workers));
        host_config = host_config.with_scaling(
            ScalerConfig::bounds(min, max).with_tick_period(Duration::from_millis(20)),
        );
    }

    // The streaming ETL service feeding the fleet — built before the hosts
    // so `--ctrl` can wire the shared tail-lag probe into every host's
    // controller.
    let tail_config = TailConfig::default()
        .with_jitter_ms(args.tail_jitter_ms)
        .with_lateness(args.tail_late_frac, args.tail_late_ms)
        .with_seed(args.tail_seed);
    let mut etl_config =
        EtlStreamConfig::new(TableLayout::ClusteredBySession).with_window_ms(args.tail_window_ms);
    if let Some(rows) = args.tail_seal_rows {
        etl_config = etl_config.with_size_watermark(rows);
    }
    let replay_records = if chaos.is_some() {
        Some(records.clone())
    } else {
        None
    };
    let mut etl = EtlService::new(
        LogTail::new(records, &tail_config),
        etl_config,
        Arc::clone(&store),
        schema.clone(),
        "tail",
    );
    if let Some((policy, counters)) = &chaos_retry {
        etl = etl.with_chaos_retry(*policy, Arc::clone(counters));
    }

    if args.ctrl {
        let min = args.min_workers.unwrap_or(1);
        let max = args
            .max_workers
            .unwrap_or_else(|| min.max(args.fill_workers).max(args.compute_workers));
        let kp = args.ctrl_kp.unwrap_or(2.0);
        let ki = args.ctrl_ki.unwrap_or(1.0);
        let kd = args.ctrl_kd.unwrap_or(0.0);
        let gauges = etl.gauges();
        let ctrl = CtrlConfig::bounds(min, max)
            .with_gains(kp, ki, kd)
            .with_tick_period(Duration::from_millis(20))
            .with_tail_lag_probe(Arc::new(move || gauges.tail_lag_ms.load(Ordering::Relaxed)));
        println!(
            "control: per-host PID kp={kp} ki={ki} kd={kd}, workers in [{min}, {max}], setpoint {:.2}, lane high {:.2}, lag escape {}ms",
            ctrl.setpoint, ctrl.lane_high, ctrl.lag_high_ms
        );
        host_config = host_config.with_ctrl(ctrl);
    }

    let fleet_config = FleetConfig::new(host_config)
        .with_hosts(args.hosts)
        .with_trainers(args.trainers.max(1))
        .with_trainer_queue_depth(args.queue_depth)
        .with_heartbeat_timeout_ms(args.heartbeat_ms)
        .with_rebalance(args.rebalance);
    println!(
        "fleet: {} hosts x ({} fill + {} compute workers, {} shards each), {} trainer lanes, heartbeat timeout {}ms, rebalance {}",
        args.hosts,
        args.fill_workers,
        args.compute_workers,
        args.shards,
        args.trainers.max(1),
        args.heartbeat_ms,
        if args.rebalance { "on" } else { "off" },
    );
    let mut fleet = DppFleet::start(fleet_config, Arc::clone(&store), schema.clone());

    // The observability plane: every host registry federates under its
    // `host="h<i>"` label next to the coordinator's recd_fleet_* counters.
    let registry = Arc::new(MetricsRegistry::new());
    let federation = Arc::new(RegistryFederation::new());
    for (label, member) in fleet.host_registries() {
        federation.set_member(label, member);
    }
    registry.register(federation as Arc<dyn Collector>);
    registry.register(fleet.counters() as Arc<dyn Collector>);
    registry.register(Arc::new(store.blob_store().clone()) as Arc<dyn Collector>);
    registry.register(etl.gauges() as Arc<dyn Collector>);
    if let Some(injector) = &chaos {
        registry.register(injector.counters() as Arc<dyn Collector>);
    }

    let server = args.metrics_port.map(|port| {
        let server = MetricsServer::start(Arc::clone(&registry), port)
            .unwrap_or_else(|err| panic!("recd-dpp: bind metrics port {port}: {err}"));
        println!("metrics: serving http://{}/metrics", server.local_addr());
        server
    });
    let aggregator = Arc::new(MetricsAggregator::new(
        Arc::clone(&registry),
        AggregatorConfig::default(),
    ));
    let run_started = std::time::Instant::now();
    aggregator.poll_at(0.0);
    let aggregator_handle = aggregator
        .spawn(Arc::new(WallClock::new(Duration::from_millis(100))) as Arc<dyn ScaleClock>);

    let mut lanes: Vec<Option<TrainerLane>> = fleet
        .take_trainers()
        .into_iter()
        .map(|trainer| Some(TrainerLane::spawn(trainer, None)))
        .collect();
    let mut killed: Vec<std::thread::JoinHandle<(usize, u64, u64)>> = Vec::new();

    let done = Arc::new(AtomicBool::new(false));
    let monitor = if args.quiet {
        None
    } else {
        let done = Arc::clone(&done);
        let registry = Arc::clone(&registry);
        Some(std::thread::spawn(move || {
            while !done.load(Ordering::Relaxed) {
                std::thread::sleep(Duration::from_millis(100));
                println!("{}", live_line(&registry.gather()));
            }
        }))
    };

    // Pump the tail; every pump ticks the coordinator (heartbeats, death
    // detection, partition healing), applies due faults, lands sealed
    // partitions into the fleet, and ends in a fleet-wide barrier.
    let mut clock = ManualClock::new();
    let mut checkpoint = etl.checkpoint();
    while !etl.tail_drained() {
        let now = clock.advance(args.tail_rate_ms.max(1));
        fleet.tick(now);
        if let Some(injector) = chaos.as_mut() {
            for action in injector.poll(now) {
                match action {
                    FaultAction::StallTrainer { lane, ms } => {
                        if let Some(Some(lane)) = lanes.get(lane) {
                            lane.stall(ms);
                        }
                    }
                    FaultAction::KillTrainer { lane } => {
                        if let Some(slot) = lanes.get_mut(lane) {
                            if let Some(lane) = slot.take() {
                                killed.push(lane.kill());
                            }
                        }
                    }
                    FaultAction::KillHost { host } => {
                        println!("chaos: [{now}ms] kill-host h{host}");
                        fleet.kill_host(host);
                    }
                    FaultAction::PartitionHost { host, ms } => {
                        println!("chaos: [{now}ms] partition-host h{host} for {ms}ms");
                        fleet.partition_host(host, ms);
                    }
                    FaultAction::RejoinHost { host } => {
                        println!("chaos: [{now}ms] rejoin-host h{host}");
                        fleet.rejoin_host(host);
                    }
                    FaultAction::CrashEtlPump => {
                        let (policy, counters) = chaos_retry.as_ref().expect("chaos retry wired");
                        counters.note_pump_crash();
                        let records = replay_records
                            .clone()
                            .expect("chaos keeps a replay copy of the tail");
                        let recovery_started = std::time::Instant::now();
                        etl = EtlService::resume_from(
                            LogTail::new(records, &tail_config),
                            etl_config,
                            Arc::clone(&store),
                            schema.clone(),
                            "tail",
                            checkpoint.clone(),
                        )
                        .with_chaos_retry(*policy, Arc::clone(counters));
                        counters.note_resume(recovery_started.elapsed());
                    }
                }
            }
        }
        etl.pump(
            now,
            &mut |landed: &recd_storage::StoredPartition, _sealed: &recd_etl::TablePartition| {
                fleet.ingest_partition(landed);
            },
        );
        checkpoint = etl.checkpoint();
        assert!(fleet.flush_partition(), "fleet pump barrier must resolve");
    }
    let etl_output =
        etl.finish(&mut |landed: &recd_storage::StoredPartition,
                         _sealed: &recd_etl::TablePartition| {
            fleet.ingest_partition(landed);
        });
    assert!(fleet.flush_partition(), "final fleet barrier must resolve");
    let output = fleet.finish();

    done.store(true, Ordering::Relaxed);
    if let Some(monitor) = monitor {
        monitor.join().expect("monitor thread");
    }
    aggregator_handle.stop();
    aggregator.poll_at(run_started.elapsed().as_secs_f64());
    for thread in killed {
        let (trainer, batches, samples) = thread.join().expect("trainer thread");
        println!(
            "trainer {trainer}: consumed {batches} batches / {samples} samples (killed by chaos)"
        );
    }
    for lane in lanes.into_iter().flatten() {
        let (trainer, batches, samples) = lane.join.join().expect("trainer thread");
        println!("trainer {trainer}: consumed {batches} batches / {samples} samples");
    }

    print_etl_summary(&etl_output.report);

    if !output.errors.is_empty() {
        for error in &output.errors {
            eprintln!("recd-dpp: {error}");
        }
        std::process::exit(1);
    }
    let fr = &output.report;
    println!(
        "\nfleet: {}/{} hosts live at finish, {} heartbeats, {} deaths detected ({} kills / {} partitions / {} rejoins, {} flaps)",
        fr.hosts_live_at_finish,
        fr.hosts,
        fr.heartbeats,
        fr.deaths_detected,
        fr.kills,
        fr.partitions,
        fr.rejoins,
        fr.flaps,
    );
    println!(
        "fleet: {} barriers, {} shard replacements, {} rebalance moves ({:.3}ms), {} files replayed, {} duplicate batches dropped",
        fr.barriers,
        fr.shard_replacements,
        fr.rebalance_moves,
        fr.rebalance_ms,
        fr.replayed_files,
        fr.duplicate_batches_dropped,
    );
    for (host, report) in &output.host_reports {
        println!(
            "fleet: host h{host} processed {} batches / {} samples this incarnation",
            report.batches, report.samples
        );
    }
    print_dpp_report(&output.dpp);

    if let Some(injector) = chaos.as_mut() {
        print_chaos_summary(&injector.finish());
    }
    // Machine-parseable lines — scripts/bench_snapshot.sh lifts these into
    // BENCH_pipeline.json.
    if let Some(rate) = aggregator.derived().records_per_second {
        println!("derived continuous_records_per_second {rate:.1}");
    }
    println!(
        "derived pipeline_records_per_second {:.1}",
        output.dpp.samples as f64 / run_started.elapsed().as_secs_f64().max(1e-9)
    );
    println!("derived fleet_rebalance_ms {:.3}", fr.rebalance_ms);
    print_storage_derived(store.blob_store());
    if !args.quiet {
        println!("\n{}", aggregator.report());
    }
    if args.scrape_once {
        let addr = server
            .as_ref()
            .expect("--scrape-once requires --metrics-port")
            .local_addr();
        match recd_obs::scrape(addr) {
            Ok(body) => {
                println!("\nscrape of http://{addr}/metrics ({} bytes):", body.len());
                print!("{body}");
            }
            Err(err) => {
                eprintln!("recd-dpp: scrape failed: {err}");
                std::process::exit(1);
            }
        }
    }
    if let Some(server) = server {
        server.shutdown();
    }
}

/// The streaming-ETL half of a continuous run, as two summary lines.
fn print_etl_summary(r: &EtlServiceReport) {
    let c = r.etl.counters;
    println!(
        "\netl: {} records tailed -> {} joined samples, {} late drops, {} duplicates, {} orphans",
        c.records,
        c.joined_samples,
        c.late_drops,
        c.duplicates,
        c.orphaned_features + c.orphaned_events,
    );
    println!(
        "etl: {} partitions sealed ({} hour / {} size / {} finish), {} landed ({} stored bytes, {:.2}x compression), peak tail lag {:.0}s",
        c.sealed_partitions,
        c.hour_seals,
        c.size_seals,
        c.finish_seals,
        r.landed_partitions,
        r.storage.stored_bytes,
        r.storage.compression_ratio(),
        r.peak_tail_lag_ms as f64 / 1_000.0,
    );
}

/// The service (or fleet-aggregate) report, as the final summary block.
fn print_dpp_report(r: &DppReport) {
    println!(
        "\ndone in {:.3}s: {} batches, {} samples, {:.0} samples/s",
        r.wall_seconds, r.batches, r.samples, r.samples_per_second
    );
    if r.partitions_ingested > 0 {
        println!(
            "partitions ingested as they landed: {}",
            r.partitions_ingested
        );
    }
    println!(
        "dedup factor {:.2}x, egress {} bytes, peak queue depths: input={} filled={} work={} out={}",
        r.dedupe_factor,
        r.egress_bytes,
        r.peak_input_queue_depth,
        r.peak_filled_queue_depth,
        r.peak_work_queue_depth,
        r.peak_output_queue_depth,
    );
    let m = &r.reader_metrics;
    let (fill, convert, process) = m.phase_fractions();
    println!(
        "phase CPU split: fill {:.0}% / convert {:.0}% / process {:.0}%",
        fill * 100.0,
        convert * 100.0,
        process * 100.0
    );
    println!(
        "batch pool: {:.1}% reuse ({} hits / {} misses), converted-shell pool: {} hits",
        r.batch_pool.reuse_rate() * 100.0,
        r.batch_pool.hits,
        r.batch_pool.misses,
        r.converted_pool.hits,
    );
    for lane in &r.trainers {
        println!(
            "trainer {}: delivered {} batches / {} samples, peak lane depth {}",
            lane.trainer, lane.delivered_batches, lane.delivered_samples, lane.peak_queue_depth
        );
    }
    if let Some(ctrl) = &r.ctrl {
        println!(
            "control: {} ticks, {} actuations ({} grows / {} shrinks), {} pump pauses / {} resumes",
            ctrl.ticks,
            ctrl.actuations,
            ctrl.grows,
            ctrl.shrinks,
            ctrl.pump_pauses,
            ctrl.pump_resumes
        );
    }
    if !r.scale_events.is_empty() {
        println!(
            "scaling: peak {} fill / {} compute workers, {} events:",
            r.peak_fill_workers,
            r.peak_compute_workers,
            r.scale_events.len()
        );
        for event in &r.scale_events {
            println!(
                "  [{:6.2}s] {} {} -> {} (queue depth {})",
                event.at_seconds, event.pool, event.from, event.to, event.queue_depth
            );
        }
    }
}

/// The chaos engine's final accounting line.
fn print_chaos_summary(report: &ChaosReport) {
    println!(
        "\nchaos: {}/{} faults fired (seed {}), {} injected get + {} put failures absorbed by \
         {} retries ({} exhausted, {:.2}ms backoff), {} pump crashes / {} resumes ({:.2}ms recovery)",
        report.faults_fired,
        report.planned_faults,
        report.seed,
        report.injected_get_failures,
        report.injected_put_failures,
        report.retries,
        report.retry_exhausted,
        report.backoff_ms,
        report.pump_crashes,
        report.resumes,
        report.recovery_ms,
    );
}
