//! The fan-out dispatch stage: resequences finished batches per shard and
//! streams them onto N bounded per-trainer channels, so many trainers feed
//! from one preprocessing tier — the paper's DPP deployment shape.
//!
//! ```text
//!                                    ┌─▶ [lane 0] ─▶ TrainerHandle 0
//! compute ─ [out] ─ resequence ─ assign ─▶ [lane 1] ─▶ TrainerHandle 1
//!                                    └─▶ [lane N] ─▶ TrainerHandle N
//! ```
//!
//! Flow control is **per trainer**: every lane is its own bounded channel
//! with its own depth gauge and delivered/consumed counters. When one
//! trainer stalls, its lane fills and batches destined for it park in a
//! bounded spillover buffer while other trainers keep receiving; only once
//! the spillover is exhausted does the sink block, which then backpressures
//! the whole pipeline the usual way (out queue → compute → router → fill →
//! [`DppHandle::submit_file`](crate::DppHandle::submit_file)).
//!
//! The sink is also where partition barriers resolve: the router stamps each
//! [`flush_partition`](crate::DppHandle::flush_partition) barrier with
//! per-shard sequence cuts, and the sink completes the barrier once every
//! batch below the cut has been pushed onto its trainer lane.

use crate::channel::{Receiver, RecvTimeout, Sender};
use recd_core::ConvertedBatch;
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// How delivered batches are assigned to trainer lanes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrainerAssignPolicy {
    /// `trainer = shard % trainers`: every shard's batches always land on
    /// the same trainer, so a trainer sees a stable slice of the session
    /// space (and the in-batch dedup locality that comes with it). This is
    /// the deterministic default.
    ShardPinned,
    /// Each batch goes to the lane with the smallest backlog (queue depth
    /// plus parked batches; ties pick the lowest trainer id). Routes around
    /// slow trainers at the cost of shard affinity.
    LeastLoaded,
    /// Batches rotate over lanes in dispatch order — the uniform baseline.
    RoundRobin,
}

impl TrainerAssignPolicy {
    /// Stable name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            TrainerAssignPolicy::ShardPinned => "shard_pinned",
            TrainerAssignPolicy::LeastLoaded => "least_loaded",
            TrainerAssignPolicy::RoundRobin => "round_robin",
        }
    }
}

/// One delivered unit of trainer input: the preprocessed batch plus its
/// provenance (which shard lane produced it, and its per-shard sequence
/// number — `(shard, seq)` totally orders a shard's stream).
#[derive(Debug)]
pub struct TrainerBatch {
    /// The trainer lane this batch was assigned to.
    pub trainer: usize,
    /// The shard that coalesced the batch.
    pub shard: usize,
    /// Per-shard emission sequence number.
    pub seq: u64,
    /// The preprocessed batch.
    pub batch: ConvertedBatch,
}

/// Per-lane counters shared between the sink (delivery side) and the
/// [`TrainerHandle`] (consumption side).
#[derive(Debug, Default)]
pub(crate) struct LaneShared {
    delivered_batches: AtomicU64,
    delivered_samples: AtomicU64,
    consumed_batches: AtomicU64,
    consumed_samples: AtomicU64,
    dropped_batches: AtomicU64,
    /// Tombstone set the instant the trainer's handle drops. The channel's
    /// own `is_closed` flips only after the receiver half is torn down, so a
    /// dispatch racing the drop can still observe an open channel; the
    /// tombstone is written first and closes that window.
    dead: AtomicBool,
}

impl LaneShared {
    pub(crate) fn mark_dead(&self) {
        self.dead.store(true, Ordering::Release);
    }

    pub(crate) fn is_dead(&self) -> bool {
        self.dead.load(Ordering::Acquire)
    }

    pub(crate) fn delivered_batches(&self) -> u64 {
        self.delivered_batches.load(Ordering::Acquire)
    }

    pub(crate) fn delivered_samples(&self) -> u64 {
        self.delivered_samples.load(Ordering::Acquire)
    }

    pub(crate) fn consumed_batches(&self) -> u64 {
        self.consumed_batches.load(Ordering::Acquire)
    }

    pub(crate) fn consumed_samples(&self) -> u64 {
        self.consumed_samples.load(Ordering::Acquire)
    }

    pub(crate) fn dropped_batches(&self) -> u64 {
        self.dropped_batches.load(Ordering::Acquire)
    }

    /// Accounts batches pushed onto this lane. Used by the sink's dispatcher
    /// and by the fleet collectors, which deliver onto fleet-level lanes
    /// without going through a sink.
    pub(crate) fn note_delivery(&self, batches: u64, samples: u64) {
        self.delivered_batches.fetch_add(batches, Ordering::AcqRel);
        self.delivered_samples.fetch_add(samples, Ordering::AcqRel);
    }

    /// Accounts one batch that could not be delivered (dead lane).
    pub(crate) fn note_dropped(&self) {
        self.dropped_batches.fetch_add(1, Ordering::AcqRel);
    }
}

/// A trainer's pull endpoint: a bounded, backpressured stream of
/// preprocessed batches with its own consumption accounting. One handle per
/// configured trainer, obtained from
/// [`DppHandle::take_trainers`](crate::DppHandle::take_trainers).
pub struct TrainerHandle {
    id: usize,
    rx: Receiver<TrainerBatch>,
    shared: Arc<LaneShared>,
}

impl TrainerHandle {
    pub(crate) fn new(id: usize, rx: Receiver<TrainerBatch>, shared: Arc<LaneShared>) -> Self {
        Self { id, rx, shared }
    }

    /// This trainer's id (its lane index).
    pub fn id(&self) -> usize {
        self.id
    }

    /// Pulls the next batch, blocking while the lane is empty. Returns
    /// [`None`] once the service has shut down and the lane has drained.
    pub fn recv(&self) -> Option<TrainerBatch> {
        let item = self.rx.recv()?;
        self.note_consumed(&item);
        Some(item)
    }

    /// Pulls the next batch without blocking; [`None`] means the lane is
    /// currently empty (the stream may still be live).
    pub fn try_recv(&self) -> Option<TrainerBatch> {
        let item = self.rx.try_recv()?;
        self.note_consumed(&item);
        Some(item)
    }

    /// Pulls the next batch, waiting at most `timeout` — the building block
    /// for consumer loops that must interleave consumption with control
    /// signals (the chaos harness's stall/kill commands).
    pub fn recv_timeout(&self, timeout: std::time::Duration) -> RecvTimeout<TrainerBatch> {
        match self.rx.recv_timeout(timeout) {
            RecvTimeout::Item(item) => {
                self.note_consumed(&item);
                RecvTimeout::Item(item)
            }
            other => other,
        }
    }

    /// Pulls every remaining batch until the service shuts down, blocking as
    /// needed — the "consume to the end" loop as one call.
    pub fn drain(&self) -> Vec<TrainerBatch> {
        let mut out = Vec::new();
        while let Some(item) = self.recv() {
            out.push(item);
        }
        out
    }

    /// Current lane depth: batches delivered but not yet pulled. This is the
    /// trainer's backpressure gauge — a persistently full lane means this
    /// trainer is the slow consumer.
    pub fn queue_depth(&self) -> usize {
        self.rx.len()
    }

    /// High-water mark of the lane depth.
    pub fn peak_queue_depth(&self) -> usize {
        self.rx.peak_depth()
    }

    /// Batches the sink has pushed onto this lane so far.
    pub fn delivered_batches(&self) -> u64 {
        self.shared.delivered_batches()
    }

    /// Batches this handle has pulled so far.
    pub fn consumed_batches(&self) -> u64 {
        self.shared.consumed_batches()
    }

    /// Samples this handle has pulled so far.
    pub fn consumed_samples(&self) -> u64 {
        self.shared.consumed_samples()
    }

    fn note_consumed(&self, item: &TrainerBatch) {
        self.shared.consumed_batches.fetch_add(1, Ordering::AcqRel);
        self.shared
            .consumed_samples
            .fetch_add(item.batch.batch_size as u64, Ordering::AcqRel);
    }
}

impl Drop for TrainerHandle {
    fn drop(&mut self) {
        // Tombstone before the channel half goes away, so the sink never
        // routes new batches at a lane whose consumer is mid-teardown.
        self.shared.mark_dead();
    }
}

impl std::fmt::Debug for TrainerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrainerHandle")
            .field("id", &self.id)
            .field("queue_depth", &self.queue_depth())
            .finish()
    }
}

/// Tracks which [`flush_partition`](crate::DppHandle::flush_partition)
/// barriers have fully delivered. Barrier ids are issued monotonically by
/// the handle; the sink completes them in order.
#[derive(Debug, Default)]
pub(crate) struct BarrierState {
    inner: Mutex<BarrierInner>,
    cond: Condvar,
}

#[derive(Debug, Default)]
struct BarrierInner {
    completed: u64,
    closed: bool,
}

impl BarrierState {
    /// Marks `id` (and every smaller id) complete and wakes waiters.
    pub(crate) fn complete(&self, id: u64) {
        let mut inner = self.inner.lock().expect("barrier lock");
        inner.completed = inner.completed.max(id);
        self.cond.notify_all();
    }

    /// Marks the stream finished: no further barrier can complete, so every
    /// waiter unblocks (receiving `false` unless its barrier already
    /// completed).
    pub(crate) fn close(&self) {
        let mut inner = self.inner.lock().expect("barrier lock");
        inner.closed = true;
        self.cond.notify_all();
    }

    /// Blocks until barrier `id` completes. Returns `false` if the sink shut
    /// down first.
    pub(crate) fn wait(&self, id: u64) -> bool {
        let mut inner = self.inner.lock().expect("barrier lock");
        while inner.completed < id && !inner.closed {
            inner = self.cond.wait(inner).expect("barrier lock");
        }
        inner.completed >= id
    }
}

/// A finished batch leaving a compute worker, tagged with its shard lane and
/// per-shard sequence number.
pub(crate) struct OutBatch {
    pub(crate) shard: usize,
    pub(crate) seq: u64,
    pub(crate) batch: ConvertedBatch,
}

/// Everything that flows into the sink.
pub(crate) enum SinkInput {
    /// A finished batch from a compute worker.
    Batch(OutBatch),
    /// A compute worker failed to convert `(shard, seq)`: nothing to
    /// deliver, but the sequence slot must still be accounted — otherwise
    /// the resequencer would wait on the hole forever, wedging every later
    /// batch of that shard and any barrier cut past it.
    Skip { shard: usize, seq: u64 },
    /// A partition barrier from the router: `cuts[shard]` is the shard's
    /// sequence length at the barrier, i.e. every `(shard, seq)` with
    /// `seq < cuts[shard]` was submitted before the barrier.
    Barrier { id: u64, cuts: Vec<u64> },
}

/// The sink's sending half of one trainer lane.
pub(crate) struct LaneSender {
    pub(crate) tx: Sender<TrainerBatch>,
    pub(crate) shared: Arc<LaneShared>,
}

pub(crate) struct SinkParams {
    pub(crate) out_rx: Receiver<SinkInput>,
    pub(crate) shards: usize,
    /// Empty means collect mode: the legacy single sink that accumulates
    /// every batch for [`DppHandle::finish`](crate::DppHandle::finish).
    pub(crate) lanes: Vec<LaneSender>,
    pub(crate) policy: TrainerAssignPolicy,
    /// Total parked batches allowed across all lanes before the sink blocks.
    pub(crate) park_capacity: usize,
    pub(crate) barriers: Arc<BarrierState>,
    /// Shell pool for batches that can't be delivered (dead trainer lane):
    /// their buffers go back into the compute loop instead of being dropped.
    pub(crate) converted_pool: Arc<crate::pool::BatchPool<ConvertedBatch>>,
}

/// How often the sink retries parked batches while new input is quiet.
const PARK_RETRY: Duration = Duration::from_micros(200);

/// The sink stage body. Returns the collected batches (empty in fan-out
/// mode) keyed by `(shard, seq)` so iteration order is deterministic.
pub(crate) fn run_sink(params: SinkParams) -> BTreeMap<(usize, u64), ConvertedBatch> {
    let SinkParams {
        out_rx,
        shards,
        lanes,
        policy,
        park_capacity,
        barriers,
        converted_pool,
    } = params;

    let mut collected: BTreeMap<(usize, u64), ConvertedBatch> = BTreeMap::new();
    // Out-of-order arrivals wait here until their shard's cursor reaches
    // them (`None` marks a failed conversion's sequence slot, which is
    // accounted but delivers nothing); bounded in practice by the in-flight
    // population of the upstream queues.
    let mut reorder: BTreeMap<(usize, u64), Option<ConvertedBatch>> = BTreeMap::new();
    let mut next_seq = vec![0u64; shards];
    let mut pending_barriers: VecDeque<(u64, Vec<u64>)> = VecDeque::new();
    let mut dispatcher = Dispatcher {
        parked: (0..lanes.len()).map(|_| VecDeque::new()).collect(),
        lanes,
        parked_total: 0,
        park_capacity,
        rr: 0,
        policy,
        converted_pool,
    };

    loop {
        // While batches are parked, poll with a short timeout so a consuming
        // trainer frees lane space even when no new batch arrives.
        let input = if dispatcher.parked_total > 0 {
            match out_rx.recv_timeout(PARK_RETRY) {
                RecvTimeout::Item(input) => Some(input),
                RecvTimeout::Timeout => None,
                RecvTimeout::Disconnected => break,
            }
        } else {
            match out_rx.recv() {
                Some(input) => Some(input),
                None => break,
            }
        };
        match input {
            Some(SinkInput::Batch(out)) => {
                reorder.insert((out.shard, out.seq), Some(out.batch));
            }
            Some(SinkInput::Skip { shard, seq }) => {
                reorder.insert((shard, seq), None);
            }
            Some(SinkInput::Barrier { id, cuts }) => pending_barriers.push_back((id, cuts)),
            None => {}
        }
        dispatcher.retry_parked();
        advance(
            &mut reorder,
            &mut next_seq,
            policy,
            &mut dispatcher,
            &mut collected,
        );
        complete_barriers(&mut pending_barriers, &next_seq, &mut dispatcher, &barriers);
    }

    // End of stream: every producer is gone, so whatever remains in the
    // reorder buffer is a contiguous tail — deliver it, force parked batches
    // out (blocking; trainers draining their lanes unblock us), and resolve
    // any outstanding barriers.
    advance(
        &mut reorder,
        &mut next_seq,
        policy,
        &mut dispatcher,
        &mut collected,
    );
    debug_assert!(reorder.is_empty(), "sink must drain every emitted batch");
    dispatcher.flush_parked_blocking();
    while let Some((id, _)) = pending_barriers.pop_front() {
        barriers.complete(id);
    }
    barriers.close();
    collected
}

/// The fan-out delivery state: trainer lanes, the bounded per-lane spillover
/// of batches whose lane was full, and the round-robin cursor.
struct Dispatcher {
    lanes: Vec<LaneSender>,
    parked: Vec<VecDeque<TrainerBatch>>,
    parked_total: usize,
    park_capacity: usize,
    rr: usize,
    policy: TrainerAssignPolicy,
    converted_pool: Arc<crate::pool::BatchPool<ConvertedBatch>>,
}

impl Dispatcher {
    /// A lane is dead once its trainer dropped the handle. The tombstone is
    /// authoritative (written inside the handle's `Drop` before the channel
    /// half disconnects); `is_closed` is kept as a second signal for lanes
    /// torn down through other paths.
    fn lane_dead(&self, trainer: usize) -> bool {
        self.lanes[trainer].shared.is_dead() || self.lanes[trainer].tx.is_closed()
    }

    /// The live (not dropped-handle) lane with the smallest backlog (queued
    /// plus parked); ties pick the lowest trainer id. A lane whose trainer
    /// is gone never wins — otherwise a dead trainer's frozen empty lane
    /// would absorb (and drop) the entire stream while live trainers
    /// starve. [`None`] when every trainer is gone.
    fn least_loaded_live(&self) -> Option<usize> {
        let mut best = None;
        let mut best_load = usize::MAX;
        for (t, lane) in self.lanes.iter().enumerate() {
            if self.lane_dead(t) {
                continue;
            }
            let load = lane.tx.len() + self.parked[t].len();
            if load < best_load {
                best = Some(t);
                best_load = load;
            }
        }
        best
    }

    /// [`least_loaded_live`](Self::least_loaded_live) with the historical
    /// lane-0 fallback for the all-dead case (the dispatch path then drops
    /// and accounts the batch against lane 0).
    fn least_loaded(&self) -> usize {
        self.least_loaded_live().unwrap_or(0)
    }

    /// Where a batch aimed at dead lane `trainer` should go instead:
    /// shard-pinned placement is a determinism contract (a shard's stream
    /// must never migrate), so it drops; the load-balancing policies
    /// re-route to the least-loaded live lane.
    fn reroute_target(&self, trainer: usize) -> Option<usize> {
        if self.policy == TrainerAssignPolicy::ShardPinned {
            return None;
        }
        self.least_loaded_live().filter(|&t| t != trainer)
    }

    /// A batch destined for a dead lane is accounted and its shell recycled
    /// back into the compute loop.
    fn drop_for_dead_lane(&self, trainer: usize, batch: ConvertedBatch) {
        self.lanes[trainer].shared.mark_dead();
        self.lanes[trainer].shared.note_dropped();
        self.converted_pool.recycle(batch);
    }

    /// Pushes one batch onto its lane, parking it when the lane is full.
    /// When the spillover exceeds `park_capacity`, blocks on the most
    /// backed-up lane until space frees — that block is what ultimately
    /// backpressures the whole pipeline behind a universally slow consumer.
    fn dispatch(&mut self, trainer: usize, mut item: TrainerBatch) {
        let trainer = if self.lane_dead(trainer) {
            match self.reroute_target(trainer) {
                // The trainer died under a load-balancing policy: the batch
                // survives on another live lane instead of being lost.
                Some(target) => {
                    item.trainer = target;
                    target
                }
                None => {
                    // Shard-pinned, or no live lane left: don't wedge the
                    // service, account the loss instead.
                    self.drop_for_dead_lane(trainer, item.batch);
                    return;
                }
            }
        } else {
            trainer
        };
        let samples = item.batch.batch_size as u64;
        // Lane order is per-trainer FIFO: never overtake an already-parked
        // batch.
        if self.parked[trainer].is_empty() {
            match self.lanes[trainer].tx.try_send(item) {
                Ok(()) => {
                    note_delivered(&self.lanes[trainer], 1, samples);
                    return;
                }
                Err(crate::channel::SendError(item)) => {
                    self.parked[trainer].push_back(item);
                    self.parked_total += 1;
                }
            }
        } else {
            self.parked[trainer].push_back(item);
            self.parked_total += 1;
        }
        while self.parked_total > self.park_capacity {
            let worst = (0..self.lanes.len())
                .max_by_key(|&t| self.parked[t].len())
                .expect("at least one lane when parked");
            let Some(item) = self.parked[worst].pop_front() else {
                break;
            };
            self.parked_total -= 1;
            self.send_blocking(worst, item);
        }
    }

    /// Retries parked batches front-first on every sink iteration. Batches
    /// parked against a lane that died meanwhile re-route (or drop under
    /// shard pinning) instead of sitting there forever.
    fn retry_parked(&mut self) {
        for t in 0..self.lanes.len() {
            while let Some(mut item) = self.parked[t].pop_front() {
                let samples = item.batch.batch_size as u64;
                if self.lane_dead(t) {
                    self.parked_total -= 1;
                    match self.reroute_target(t) {
                        Some(target) => {
                            item.trainer = target;
                            self.dispatch(target, item);
                        }
                        None => self.drop_for_dead_lane(t, item.batch),
                    }
                    continue;
                }
                match self.lanes[t].tx.try_send(item) {
                    Ok(()) => {
                        note_delivered(&self.lanes[t], 1, samples);
                        self.parked_total -= 1;
                    }
                    Err(crate::channel::SendError(item)) => {
                        self.parked[t].push_front(item);
                        break;
                    }
                }
            }
        }
    }

    /// Blocking-delivers one batch (used for spillover overflow and final
    /// drain). A lane that disconnects mid-send re-routes the batch to a
    /// live lane (load-balancing policies) or counts it as dropped
    /// (shard-pinned / all lanes dead). The live set only shrinks, so the
    /// re-route recursion is bounded.
    fn send_blocking(&mut self, trainer: usize, item: TrainerBatch) {
        let samples = item.batch.batch_size as u64;
        match self.lanes[trainer].tx.send(item) {
            Ok(()) => note_delivered(&self.lanes[trainer], 1, samples),
            Err(crate::channel::SendError(mut item)) => {
                self.lanes[trainer].shared.mark_dead();
                match self.reroute_target(trainer) {
                    Some(target) => {
                        item.trainer = target;
                        self.send_blocking(target, item);
                    }
                    None => self.drop_for_dead_lane(trainer, item.batch),
                }
            }
        }
    }

    /// Forces every parked batch out with blocking sends.
    fn flush_parked_blocking(&mut self) {
        for t in 0..self.lanes.len() {
            while let Some(item) = self.parked[t].pop_front() {
                self.parked_total -= 1;
                self.send_blocking(t, item);
            }
        }
    }
}

fn note_delivered(lane: &LaneSender, batches: u64, samples: u64) {
    lane.shared.note_delivery(batches, samples);
}

/// Delivers every batch whose shard cursor has reached it; a `None` slot (a
/// failed conversion) just advances the cursor.
fn advance(
    reorder: &mut BTreeMap<(usize, u64), Option<ConvertedBatch>>,
    next_seq: &mut [u64],
    policy: TrainerAssignPolicy,
    dispatcher: &mut Dispatcher,
    collected: &mut BTreeMap<(usize, u64), ConvertedBatch>,
) {
    for (shard, cursor) in next_seq.iter_mut().enumerate() {
        while let Some(slot) = reorder.remove(&(shard, *cursor)) {
            let seq = *cursor;
            *cursor += 1;
            let Some(batch) = slot else {
                continue;
            };
            if dispatcher.lanes.is_empty() {
                collected.insert((shard, seq), batch);
                continue;
            }
            let trainer = match policy {
                TrainerAssignPolicy::ShardPinned => shard % dispatcher.lanes.len(),
                TrainerAssignPolicy::RoundRobin => {
                    let t = dispatcher.rr % dispatcher.lanes.len();
                    dispatcher.rr += 1;
                    t
                }
                TrainerAssignPolicy::LeastLoaded => dispatcher.least_loaded(),
            };
            let item = TrainerBatch {
                trainer,
                shard,
                seq,
                batch,
            };
            dispatcher.dispatch(trainer, item);
        }
    }
}

/// Completes every pending barrier whose per-shard cuts the delivery cursors
/// have reached. Completion requires the pre-barrier batches to actually sit
/// in trainer lanes, so any still-parked batch is forced out first.
fn complete_barriers(
    pending: &mut VecDeque<(u64, Vec<u64>)>,
    next_seq: &[u64],
    dispatcher: &mut Dispatcher,
    barriers: &BarrierState,
) {
    while let Some((id, cuts)) = pending.front() {
        let reached = cuts
            .iter()
            .enumerate()
            .all(|(shard, cut)| next_seq[shard] >= *cut);
        if !reached {
            return;
        }
        // The cursors passed every pre-barrier batch, but some may have been
        // parked rather than delivered; they must reach their lanes before
        // the flush caller is released.
        if dispatcher.parked_total > 0 {
            dispatcher.flush_parked_blocking();
        }
        barriers.complete(*id);
        pending.pop_front();
    }
}
