//! The cross-tier PID control loop: one controller that closes the loop
//! from the trainers all the way back to the ETL pump.
//!
//! The watermark scaler ([`crate::scaler`]) reads only the DPP input/work
//! queues, so two end-to-end failure modes stay invisible to it: when the
//! *trainers* are the bottleneck the pump keeps buffering at the DPP input
//! queue (the work queue looks healthy — compute is blocked downstream, not
//! starved upstream), and compute pools never scale *down* while lanes are
//! full. This controller samples three tiers on the shared
//! [`ScaleClock`] — DPP input/work queue fractions, trainer-lane depth
//! fractions, and the ETL tail lag — and emits three coordinated
//! actuations:
//!
//! 1. **a pump-rate signal**: [`PumpGate`] turns red while any trainer lane
//!    sits above [`CtrlConfig::lane_high`], so the ETL service slows or
//!    pauses pumping instead of buffering at the DPP input queue (with a
//!    tail-lag escape hatch: a pump is never held back once the ETL has
//!    fallen more than [`CtrlConfig::lag_high_ms`] behind the tail);
//! 2. **grow/shrink targets** for the fill and compute pools driven by PID
//!    error terms instead of watermark+sustain counters — including scaling
//!    compute *down* when lanes are full, which the watermark heuristic can
//!    never do because a blocked compute pool keeps its work queue drained;
//! 3. **exported `recd_ctrl_*` metrics** (setpoint, per-pool error and
//!    integral, actuation counters, pump-gate state) via the
//!    [`recd_obs::Collector`] implementation on [`CtrlShared`].
//!
//! The controller is *conservative by construction*: it only changes when
//! work happens (pump timing, worker population), never what the work is.
//! Routing stays single-threaded and order-restored, so batch composition —
//! and therefore every trainer-batch union — is byte-identical with the
//! controller on, off, or tuned badly. The equivalence suite in
//! `crates/pipeline/tests/control.rs` pins this.

use crate::scaler::{PoolControls, ScaleClock, ScaleEvent};
use recd_obs::{Collector, MetricsBuf};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// A PID control signal crosses this magnitude before the controller acts,
/// so the gains are expressed in "queue fractions per actuation".
const ACTUATION_THRESHOLD: f64 = 1.0;

/// The integral term is clamped to this magnitude so a long saturated phase
/// cannot wind up an arbitrarily large backlog of future actuations.
const INTEGRAL_CLAMP: f64 = 5.0;

/// PID controller configuration: gains, setpoints, pool bounds, cadence.
#[derive(Clone)]
pub struct CtrlConfig {
    /// Proportional gain on the queue-fraction error.
    pub kp: f64,
    /// Integral gain (per tick) on the accumulated error.
    pub ki: f64,
    /// Derivative gain on the per-tick error delta.
    pub kd: f64,
    /// Queue-fraction setpoint the pools steer toward (default 0.5: queues
    /// half full — busy enough to batch well, slack enough to absorb jitter).
    pub setpoint: f64,
    /// Trainer-lane depth fraction at or above which lanes count as the
    /// bottleneck: the pump gate turns red and the compute error term is
    /// penalized toward shrink (default 0.75).
    pub lane_high: f64,
    /// ETL tail lag (ms of log time) above which the pump gate is forced
    /// green regardless of lane pressure, so backpressure can never starve
    /// the ETL into unbounded lag (default 300 000 ms).
    pub lag_high_ms: u64,
    /// Fill pool lower bound.
    pub min_fill: usize,
    /// Fill pool upper bound.
    pub max_fill: usize,
    /// Compute pool lower bound.
    pub min_compute: usize,
    /// Compute pool upper bound.
    pub max_compute: usize,
    /// Wall-clock sampling period (ignored when a custom clock is
    /// installed).
    pub tick_period: Duration,
    /// Clock override for deterministic tests; `None` uses a
    /// [`WallClock`](crate::scaler::WallClock) ticking every `tick_period`.
    pub clock: Option<Arc<dyn ScaleClock>>,
    /// Reads the ETL tail lag in ms of log time — the third tier's signal,
    /// injected by whoever owns the `EtlService` (the continuous runner).
    /// `None` means no ETL tier is attached and the lag escape hatch never
    /// fires.
    pub tail_lag_probe: Option<Arc<dyn Fn() -> u64 + Send + Sync>>,
}

impl CtrlConfig {
    /// Creates a PID policy with the given worker bounds shared by both
    /// pools and default gains `kp=2, ki=1, kd=0`: a saturated queue
    /// (error 0.5) actuates immediately, a queue at 3/4 (error 0.25)
    /// actuates on the second sustained tick — matching the watermark
    /// scaler's reaction time while adding the integral memory and the
    /// trainer/ETL signals it lacks.
    pub fn bounds(min_workers: usize, max_workers: usize) -> Self {
        let min = min_workers.max(1);
        let max = max_workers.max(min);
        Self {
            kp: 2.0,
            ki: 1.0,
            kd: 0.0,
            setpoint: 0.5,
            lane_high: 0.75,
            lag_high_ms: 300_000,
            min_fill: min,
            max_fill: max,
            min_compute: min,
            max_compute: max,
            tick_period: Duration::from_millis(20),
            clock: None,
            tail_lag_probe: None,
        }
    }

    /// Overrides the PID gains.
    #[must_use]
    pub fn with_gains(mut self, kp: f64, ki: f64, kd: f64) -> Self {
        self.kp = kp;
        self.ki = ki;
        self.kd = kd;
        self
    }

    /// Overrides the queue-fraction setpoint.
    #[must_use]
    pub fn with_setpoint(mut self, setpoint: f64) -> Self {
        self.setpoint = setpoint.clamp(0.0, 1.0);
        self
    }

    /// Overrides the trainer-lane bottleneck fraction.
    #[must_use]
    pub fn with_lane_high(mut self, lane_high: f64) -> Self {
        self.lane_high = lane_high.clamp(0.0, 1.0);
        self
    }

    /// Overrides the tail-lag escape hatch.
    #[must_use]
    pub fn with_lag_high_ms(mut self, lag_high_ms: u64) -> Self {
        self.lag_high_ms = lag_high_ms;
        self
    }

    /// Overrides the fill pool bounds.
    #[must_use]
    pub fn with_fill_bounds(mut self, min: usize, max: usize) -> Self {
        self.min_fill = min.max(1);
        self.max_fill = max.max(self.min_fill);
        self
    }

    /// Overrides the compute pool bounds.
    #[must_use]
    pub fn with_compute_bounds(mut self, min: usize, max: usize) -> Self {
        self.min_compute = min.max(1);
        self.max_compute = max.max(self.min_compute);
        self
    }

    /// Overrides the wall-clock sampling period.
    #[must_use]
    pub fn with_tick_period(mut self, period: Duration) -> Self {
        self.tick_period = period;
        self
    }

    /// Installs a custom clock (e.g. a
    /// [`ManualClock`](crate::scaler::ManualClock) in tests).
    #[must_use]
    pub fn with_clock(mut self, clock: Arc<dyn ScaleClock>) -> Self {
        self.clock = Some(clock);
        self
    }

    /// Installs the ETL tail-lag probe (ms of log time behind the tail).
    #[must_use]
    pub fn with_tail_lag_probe(mut self, probe: Arc<dyn Fn() -> u64 + Send + Sync>) -> Self {
        self.tail_lag_probe = Some(probe);
        self
    }
}

impl std::fmt::Debug for CtrlConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CtrlConfig")
            .field("kp", &self.kp)
            .field("ki", &self.ki)
            .field("kd", &self.kd)
            .field("setpoint", &self.setpoint)
            .field("lane_high", &self.lane_high)
            .field("lag_high_ms", &self.lag_high_ms)
            .field("min_fill", &self.min_fill)
            .field("max_fill", &self.max_fill)
            .field("min_compute", &self.min_compute)
            .field("max_compute", &self.max_compute)
            .field("tick_period", &self.tick_period)
            .field("custom_clock", &self.clock.is_some())
            .field("tail_lag_probe", &self.tail_lag_probe.is_some())
            .finish()
    }
}

/// Final-report accounting of one controller's run, carried in
/// [`DppReport`](crate::metrics::DppReport).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CtrlReport {
    /// Controller evaluations.
    pub ticks: u64,
    /// Total actuations: pool resizes plus pump-gate transitions.
    pub actuations: u64,
    /// Pool grow actuations.
    pub grows: u64,
    /// Pool shrink actuations.
    pub shrinks: u64,
    /// Pump-gate red transitions (pauses).
    pub pump_pauses: u64,
    /// Pump-gate green transitions (resumes).
    pub pump_resumes: u64,
}

/// The controller's shared live state: the pump gate flag the ETL side
/// polls, plus every exported `recd_ctrl_*` quantity. Lives behind an `Arc`
/// so the controller thread, the service handle, the runner's pump loop,
/// and the metrics registry all see one instance.
#[derive(Debug, Default)]
pub struct CtrlShared {
    setpoint_bits: AtomicU64,
    fill_error_bits: AtomicU64,
    fill_integral_bits: AtomicU64,
    compute_error_bits: AtomicU64,
    compute_integral_bits: AtomicU64,
    ticks: AtomicU64,
    actuations: AtomicU64,
    grows: AtomicU64,
    shrinks: AtomicU64,
    pump_pauses: AtomicU64,
    pump_resumes: AtomicU64,
    pump_paused: AtomicBool,
}

fn store_f64(slot: &AtomicU64, value: f64) {
    slot.store(value.to_bits(), Ordering::Relaxed);
}

fn load_f64(slot: &AtomicU64) -> f64 {
    f64::from_bits(slot.load(Ordering::Relaxed))
}

impl CtrlShared {
    /// Whether the controller currently holds the ETL pump back.
    pub fn pump_paused(&self) -> bool {
        self.pump_paused.load(Ordering::Acquire)
    }

    /// Total actuations so far (pool resizes + pump-gate transitions).
    pub fn actuations(&self) -> u64 {
        self.actuations.load(Ordering::Relaxed)
    }

    /// Snapshot for the final report.
    pub fn report(&self) -> CtrlReport {
        CtrlReport {
            ticks: self.ticks.load(Ordering::Relaxed),
            actuations: self.actuations.load(Ordering::Relaxed),
            grows: self.grows.load(Ordering::Relaxed),
            shrinks: self.shrinks.load(Ordering::Relaxed),
            pump_pauses: self.pump_pauses.load(Ordering::Relaxed),
            pump_resumes: self.pump_resumes.load(Ordering::Relaxed),
        }
    }
}

impl Collector for CtrlShared {
    fn collect(&self, out: &mut MetricsBuf) {
        out.gauge(
            "recd_ctrl_setpoint",
            "Queue-fraction setpoint the PID controller steers toward",
            &[],
            load_f64(&self.setpoint_bits),
        );
        out.gauge(
            "recd_ctrl_error",
            "Latest PID error term per pool (queue fraction minus setpoint)",
            &[("pool", "fill")],
            load_f64(&self.fill_error_bits),
        );
        out.gauge(
            "recd_ctrl_error",
            "Latest PID error term per pool (queue fraction minus setpoint)",
            &[("pool", "compute")],
            load_f64(&self.compute_error_bits),
        );
        out.gauge(
            "recd_ctrl_integral",
            "Accumulated (clamped) PID integral per pool",
            &[("pool", "fill")],
            load_f64(&self.fill_integral_bits),
        );
        out.gauge(
            "recd_ctrl_integral",
            "Accumulated (clamped) PID integral per pool",
            &[("pool", "compute")],
            load_f64(&self.compute_integral_bits),
        );
        out.counter(
            "recd_ctrl_ticks_total",
            "Controller evaluations",
            &[],
            self.ticks.load(Ordering::Relaxed) as f64,
        );
        out.counter(
            "recd_ctrl_actuations_total",
            "Total controller actuations (pool resizes plus pump-gate transitions)",
            &[],
            self.actuations.load(Ordering::Relaxed) as f64,
        );
        out.counter(
            "recd_ctrl_pool_resizes_total",
            "Pool resize actuations by direction",
            &[("direction", "grow")],
            self.grows.load(Ordering::Relaxed) as f64,
        );
        out.counter(
            "recd_ctrl_pool_resizes_total",
            "Pool resize actuations by direction",
            &[("direction", "shrink")],
            self.shrinks.load(Ordering::Relaxed) as f64,
        );
        out.counter(
            "recd_ctrl_pump_pauses_total",
            "Pump-gate red transitions",
            &[],
            self.pump_pauses.load(Ordering::Relaxed) as f64,
        );
        out.gauge(
            "recd_ctrl_pump_paused",
            "1 while the controller holds the ETL pump back, else 0",
            &[],
            if self.pump_paused() { 1.0 } else { 0.0 },
        );
    }
}

/// The pump-rate actuation endpoint: the ETL pump loop polls
/// [`PumpGate::pump_allowed`] before each pump and backs off (bounded) while
/// the gate is red. Cloneable and cheap — just an `Arc` view of the shared
/// controller state.
#[derive(Debug, Clone)]
pub struct PumpGate {
    shared: Arc<CtrlShared>,
}

impl PumpGate {
    /// Creates the gate over the controller's shared state.
    pub(crate) fn new(shared: Arc<CtrlShared>) -> Self {
        Self { shared }
    }

    /// Whether the ETL pump should proceed now. A `false` is advisory — the
    /// caller must bound its wait (the gate guarantees backpressure, the
    /// caller guarantees liveness).
    pub fn pump_allowed(&self) -> bool {
        !self.shared.pump_paused()
    }
}

/// Everything the PID controller thread needs.
pub(crate) struct PidParams {
    pub(crate) config: CtrlConfig,
    pub(crate) clock: Arc<dyn ScaleClock>,
    pub(crate) shared: Arc<CtrlShared>,
    pub(crate) fill: PoolControls,
    pub(crate) compute: PoolControls,
    /// Reads `(max per-lane depth, per-lane capacity)` across trainer lanes;
    /// `(0, 0)` when the service has no lanes.
    pub(crate) lane_probe: Box<dyn Fn() -> (usize, usize) + Send>,
    /// Reads the ETL tail lag in ms of log time; `None` when no ETL tier is
    /// attached (batch mode), in which case the escape hatch never fires.
    pub(crate) tail_lag_probe: Option<Box<dyn Fn() -> u64 + Send>>,
    pub(crate) events: Arc<Mutex<Vec<ScaleEvent>>>,
    /// Invoked after any resize with the pools' new target sizes (same
    /// contract as the watermark controller's `on_resize`).
    pub(crate) on_resize: Box<dyn Fn(usize, usize) + Send>,
}

/// One pool's PID state.
#[derive(Default)]
struct PidState {
    integral: f64,
    prev_error: f64,
}

impl PidState {
    /// Advances the PID one tick and returns the control signal.
    fn advance(&mut self, config: &CtrlConfig, error: f64) -> f64 {
        self.integral = (self.integral + error).clamp(-INTEGRAL_CLAMP, INTEGRAL_CLAMP);
        let derivative = error - self.prev_error;
        self.prev_error = error;
        config.kp * error + config.ki * self.integral + config.kd * derivative
    }
}

/// Spawns the PID controller thread.
pub(crate) fn spawn_pid_controller(params: PidParams) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name("dpp-pid-ctrl".to_string())
        .spawn(move || {
            let PidParams {
                config,
                clock,
                shared,
                fill,
                compute,
                lane_probe,
                tail_lag_probe,
                events,
                on_resize,
            } = params;
            store_f64(&shared.setpoint_bits, config.setpoint);
            let mut fill_pid = PidState::default();
            let mut compute_pid = PidState::default();
            while clock.wait_tick() {
                shared.ticks.fetch_add(1, Ordering::Relaxed);

                // Sample all three tiers on this tick.
                let input_depth = (fill.queue_probe)();
                let work_depth = (compute.queue_probe)();
                let input_frac = input_depth as f64 / fill.queue_capacity.max(1) as f64;
                let work_frac = work_depth as f64 / compute.queue_capacity.max(1) as f64;
                let (lane_depth, lane_capacity) = lane_probe();
                let lane_frac = if lane_capacity == 0 {
                    0.0
                } else {
                    lane_depth as f64 / lane_capacity as f64
                };
                let tail_lag_ms = tail_lag_probe.as_ref().map_or(0, |probe| probe());

                // PID error terms. The compute error subtracts a lane
                // penalty: full lanes mean compute output has nowhere to go,
                // so more compute workers cannot help and existing ones
                // should retire — the "scale compute *down* on full lanes"
                // actuation the watermark heuristic cannot express.
                let fill_error = input_frac - config.setpoint;
                // The multiplier must dominate the largest possible queue
                // error (0.5 at a saturated work queue): 4.0 makes fully
                // saturated lanes (penalty 1.0) outweigh any queue pressure.
                let lane_penalty = 4.0 * (lane_frac - config.lane_high).max(0.0);
                let compute_error = work_frac - config.setpoint - lane_penalty;
                store_f64(&shared.fill_error_bits, fill_error);
                store_f64(&shared.compute_error_bits, compute_error);

                let fill_control = fill_pid.advance(&config, fill_error);
                let compute_control = compute_pid.advance(&config, compute_error);
                store_f64(&shared.fill_integral_bits, fill_pid.integral);
                store_f64(&shared.compute_integral_bits, compute_pid.integral);

                let mut resized = false;
                resized |= actuate_pool(
                    &config,
                    &*clock,
                    &shared,
                    &fill,
                    &mut fill_pid,
                    fill_control,
                    input_depth,
                    config.min_fill,
                    config.max_fill,
                    &events,
                );
                resized |= actuate_pool(
                    &config,
                    &*clock,
                    &shared,
                    &compute,
                    &mut compute_pid,
                    compute_control,
                    work_depth,
                    config.min_compute,
                    config.max_compute,
                    &events,
                );
                if resized {
                    on_resize(fill.governor.target(), compute.governor.target());
                }

                // The pump-rate signal: hold the ETL pump while any trainer
                // lane is the bottleneck — unless the ETL has already fallen
                // `lag_high_ms` behind the tail, in which case catching up
                // outranks lane backpressure.
                let want_pause = lane_frac >= config.lane_high && tail_lag_ms <= config.lag_high_ms;
                let was_paused = shared.pump_paused.swap(want_pause, Ordering::AcqRel);
                if want_pause != was_paused {
                    shared.actuations.fetch_add(1, Ordering::Relaxed);
                    if want_pause {
                        shared.pump_pauses.fetch_add(1, Ordering::Relaxed);
                    } else {
                        shared.pump_resumes.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            // Never leave the pump gated after shutdown.
            shared.pump_paused.store(false, Ordering::Release);
        })
        .expect("spawn pid controller")
}

/// Applies one pool's control signal. Returns `true` on a resize.
#[allow(clippy::too_many_arguments)]
fn actuate_pool(
    _config: &CtrlConfig,
    clock: &dyn ScaleClock,
    shared: &CtrlShared,
    pool: &PoolControls,
    pid: &mut PidState,
    control: f64,
    queue_depth: usize,
    min: usize,
    max: usize,
    events: &Arc<Mutex<Vec<ScaleEvent>>>,
) -> bool {
    let target = pool.governor.target();
    if control >= ACTUATION_THRESHOLD && target < max {
        pool.governor.adopt((pool.spawn)());
        events.lock().expect("scale events lock").push(ScaleEvent {
            at_seconds: clock.now_seconds(),
            pool: pool.name.to_string(),
            from: target,
            to: target + 1,
            queue_depth,
        });
        shared.actuations.fetch_add(1, Ordering::Relaxed);
        shared.grows.fetch_add(1, Ordering::Relaxed);
        pid.integral = 0.0;
        return true;
    }
    if control <= -ACTUATION_THRESHOLD && target > min {
        pool.governor.request_retire();
        events.lock().expect("scale events lock").push(ScaleEvent {
            at_seconds: clock.now_seconds(),
            pool: pool.name.to_string(),
            from: target,
            to: target - 1,
            queue_depth,
        });
        shared.actuations.fetch_add(1, Ordering::Relaxed);
        shared.shrinks.fetch_add(1, Ordering::Relaxed);
        pid.integral = 0.0;
        return true;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scaler::{ManualClock, PoolGovernor};
    use std::sync::atomic::AtomicUsize;

    struct Harness {
        clock: Arc<ManualClock>,
        shared: Arc<CtrlShared>,
        input_depth: Arc<AtomicUsize>,
        work_depth: Arc<AtomicUsize>,
        lane_depth: Arc<AtomicUsize>,
        tail_lag: Arc<AtomicU64>,
        fill_governor: Arc<PoolGovernor>,
        compute_governor: Arc<PoolGovernor>,
        events: Arc<Mutex<Vec<ScaleEvent>>>,
        resizes: Arc<Mutex<Vec<(usize, usize)>>>,
        thread: JoinHandle<()>,
    }

    /// Spawns a controller over fully synthetic probes: queue depths and
    /// tail lag are atomics the test sets, lanes have capacity 8.
    fn harness(config: CtrlConfig) -> Harness {
        let clock = Arc::new(ManualClock::new());
        let shared = Arc::new(CtrlShared::default());
        let input_depth = Arc::new(AtomicUsize::new(0));
        let work_depth = Arc::new(AtomicUsize::new(0));
        let lane_depth = Arc::new(AtomicUsize::new(0));
        let tail_lag = Arc::new(AtomicU64::new(0));
        let fill_governor = Arc::new(PoolGovernor::new());
        fill_governor.adopt(std::thread::spawn(|| {}));
        let compute_governor = Arc::new(PoolGovernor::new());
        compute_governor.adopt(std::thread::spawn(|| {}));
        let events = Arc::new(Mutex::new(Vec::new()));
        let resizes = Arc::new(Mutex::new(Vec::new()));

        let probe = |depth: &Arc<AtomicUsize>| {
            let depth = Arc::clone(depth);
            Box::new(move || depth.load(Ordering::Relaxed)) as Box<dyn Fn() -> usize + Send>
        };
        let lanes = Arc::clone(&lane_depth);
        let lag = Arc::clone(&tail_lag);
        let resize_log = Arc::clone(&resizes);
        let thread = spawn_pid_controller(PidParams {
            config: config.with_clock(Arc::clone(&clock) as Arc<dyn ScaleClock>),
            clock: Arc::clone(&clock) as Arc<dyn ScaleClock>,
            shared: Arc::clone(&shared),
            fill: PoolControls {
                name: "fill",
                governor: Arc::clone(&fill_governor),
                min: 1,
                max: 8,
                queue_probe: probe(&input_depth),
                queue_capacity: 8,
                spawn: Box::new(|| std::thread::spawn(|| {})),
            },
            compute: PoolControls {
                name: "compute",
                governor: Arc::clone(&compute_governor),
                min: 1,
                max: 8,
                queue_probe: probe(&work_depth),
                queue_capacity: 8,
                spawn: Box::new(|| std::thread::spawn(|| {})),
            },
            lane_probe: Box::new(move || (lanes.load(Ordering::Relaxed), 8)),
            tail_lag_probe: Some(Box::new(move || lag.load(Ordering::Relaxed))),
            events: Arc::clone(&events),
            on_resize: Box::new(move |f, c| {
                resize_log.lock().unwrap().push((f, c));
            }),
        });
        Harness {
            clock,
            shared,
            input_depth,
            work_depth,
            lane_depth,
            tail_lag,
            fill_governor,
            compute_governor,
            events,
            resizes,
            thread,
        }
    }

    impl Harness {
        fn finish(self) {
            self.clock.shutdown();
            self.thread.join().unwrap();
            for handle in self.fill_governor.take_handles() {
                handle.join().unwrap();
            }
            for handle in self.compute_governor.take_handles() {
                handle.join().unwrap();
            }
        }
    }

    #[test]
    fn saturated_input_queue_grows_fill_and_fires_on_resize() {
        let h = harness(CtrlConfig::bounds(1, 8));
        // input_frac 1.0 → error 0.5 → control = 2*0.5 + 1*0.5 = 1.5 ≥ 1.
        h.input_depth.store(8, Ordering::Relaxed);
        assert!(h.clock.step());
        assert_eq!(h.fill_governor.target(), 2, "fill must grow on tick 1");
        assert_eq!(h.shared.report().grows, 1);
        assert!(
            h.resizes.lock().unwrap().contains(&(2, 1)),
            "on_resize must fire on a PID grow"
        );
        let events = h.events.lock().unwrap().clone();
        assert_eq!(events.len(), 1);
        assert!(events[0].is_grow());
        assert_eq!(events[0].pool, "fill");
        h.finish();
    }

    #[test]
    fn idle_queues_shrink_pools_toward_min_but_never_below() {
        let h = harness(CtrlConfig::bounds(1, 8));
        // Grow fill to 3 first.
        h.input_depth.store(8, Ordering::Relaxed);
        assert!(h.clock.step());
        assert!(h.clock.step());
        assert_eq!(h.fill_governor.target(), 3);
        // Now idle: error -0.5 per tick → shrink fires once the integral
        // rebuilds past the threshold, and never below min = 1.
        h.input_depth.store(0, Ordering::Relaxed);
        for _ in 0..12 {
            assert!(h.clock.step());
        }
        assert_eq!(h.fill_governor.target(), 1, "fill must shrink back to min");
        let report = h.shared.report();
        assert!(report.shrinks >= 2, "report {report:?}");
        h.finish();
    }

    #[test]
    fn full_lanes_pause_the_pump_and_shrink_compute() {
        let h = harness(CtrlConfig::bounds(1, 8));
        // Grow compute to 2 with a busy work queue and empty lanes.
        h.work_depth.store(8, Ordering::Relaxed);
        assert!(h.clock.step());
        assert_eq!(h.compute_governor.target(), 2);
        assert!(!h.shared.pump_paused());

        // Lanes saturate: the pump gate turns red on the next tick, and the
        // lane penalty drives the compute control negative even though the
        // work queue is still full — the scale-down the watermark heuristic
        // can never produce.
        h.lane_depth.store(8, Ordering::Relaxed);
        let gate = PumpGate::new(Arc::clone(&h.shared));
        let mut paused_ticks = 0;
        for _ in 0..8 {
            assert!(h.clock.step());
            if !gate.pump_allowed() {
                paused_ticks += 1;
            }
        }
        assert!(paused_ticks > 0, "full lanes must pause the pump");
        assert_eq!(
            h.compute_governor.target(),
            1,
            "full lanes must shrink compute back down"
        );
        let report = h.shared.report();
        assert!(report.pump_pauses >= 1);
        assert!(report.actuations >= 3, "report {report:?}");

        // Lanes drain: the gate goes green again.
        h.lane_depth.store(0, Ordering::Relaxed);
        h.work_depth.store(0, Ordering::Relaxed);
        assert!(h.clock.step());
        assert!(gate.pump_allowed(), "drained lanes must release the pump");
        assert!(h.shared.report().pump_resumes >= 1);
        h.finish();
    }

    #[test]
    fn tail_lag_escape_hatch_overrides_lane_backpressure() {
        let h = harness(CtrlConfig::bounds(1, 8).with_lag_high_ms(1_000));
        h.lane_depth.store(8, Ordering::Relaxed);
        h.tail_lag.store(5_000, Ordering::Relaxed);
        for _ in 0..3 {
            assert!(h.clock.step());
        }
        assert!(
            !h.shared.pump_paused(),
            "a lagging ETL must never be held back by lane pressure"
        );
        // Lag recovers below the hatch: now the lanes gate the pump.
        h.tail_lag.store(10, Ordering::Relaxed);
        assert!(h.clock.step());
        assert!(h.shared.pump_paused());
        h.finish();
    }

    #[test]
    fn ctrl_shared_exports_recd_ctrl_families() {
        let h = harness(CtrlConfig::bounds(1, 8));
        h.input_depth.store(8, Ordering::Relaxed);
        assert!(h.clock.step());
        let mut buf = MetricsBuf::new();
        h.shared.collect(&mut buf);
        let families = buf.into_families();
        let value = |name: &str, labels: &[(&str, &str)]| {
            recd_obs::sample_value(&families, name, labels)
                .unwrap_or_else(|| panic!("family {name} {labels:?} missing from the ctrl export"))
        };
        assert!((value("recd_ctrl_setpoint", &[]) - 0.5).abs() < 1e-9);
        assert!(value("recd_ctrl_ticks_total", &[]) >= 1.0);
        assert!(value("recd_ctrl_actuations_total", &[]) >= 1.0);
        assert!(value("recd_ctrl_error", &[("pool", "fill")]).abs() <= 1.0);
        assert!(value("recd_ctrl_integral", &[("pool", "compute")]).abs() <= INTEGRAL_CLAMP);
        assert_eq!(
            value("recd_ctrl_pool_resizes_total", &[("direction", "grow")]),
            1.0
        );
        assert_eq!(value("recd_ctrl_pump_paused", &[]), 0.0);
        h.finish();
    }
}
