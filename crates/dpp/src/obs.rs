//! Observability-plane integration: projects the streaming service's live
//! [`DppSnapshot`] (plus the combined per-phase reader accounting) into
//! `recd_dpp_*` / `recd_reader_*` metric families.
//!
//! The mapping is a pure function over an already-taken snapshot, so a
//! scrape costs one `snapshot()` — the same atomics reads the live monitor
//! already performs — and never touches the hot pipeline stages.

use crate::metrics::{DppSnapshot, TrainerLaneSnapshot};
use crate::pool::PoolStats;
use crate::service::SnapshotSource;
use recd_obs::{Collector, MetricsBuf};

/// Projects one pool's counters under a `pool=<name>` label.
fn collect_pool(stats: &PoolStats, pool: &str, out: &mut MetricsBuf) {
    out.counter(
        "recd_dpp_pool_acquires_total",
        "Batch-pool acquires by outcome: hit reused a shell, miss allocated.",
        &[("pool", pool), ("outcome", "hit")],
        stats.hits as f64,
    );
    out.counter(
        "recd_dpp_pool_acquires_total",
        "Batch-pool acquires by outcome: hit reused a shell, miss allocated.",
        &[("pool", pool), ("outcome", "miss")],
        stats.misses as f64,
    );
    out.counter(
        "recd_dpp_pool_recycled_total",
        "Shells returned to the pool shelf.",
        &[("pool", pool)],
        stats.recycled as f64,
    );
    out.counter(
        "recd_dpp_pool_discarded_total",
        "Shells dropped because the pool shelf was full.",
        &[("pool", pool)],
        stats.discarded as f64,
    );
    out.counter(
        "recd_dpp_pool_trimmed_total",
        "Idle shells dropped when dynamic scaling shrank the pool.",
        &[("pool", pool)],
        stats.trimmed as f64,
    );
    out.counter(
        "recd_dpp_pool_steals_total",
        "Hits served by stealing a shell from a sibling worker's shelf.",
        &[("pool", pool)],
        stats.steals as f64,
    );
    out.gauge(
        "recd_dpp_pool_capacity",
        "Pool shelf capacity (shrinks on dynamic scale-down).",
        &[("pool", pool)],
        stats.capacity as f64,
    );
}

/// Projects one trainer lane's state under a `trainer=<id>` label.
fn collect_lane(lane: &TrainerLaneSnapshot, out: &mut MetricsBuf) {
    let id = lane.trainer.to_string();
    let labels = [("trainer", id.as_str())];
    out.gauge(
        "recd_dpp_trainer_queue_depth",
        "Batches delivered to a trainer lane but not yet pulled.",
        &labels,
        lane.queue_depth as f64,
    );
    out.counter(
        "recd_dpp_trainer_delivered_batches_total",
        "Batches the sink pushed onto a trainer lane.",
        &labels,
        lane.delivered_batches as f64,
    );
    out.counter(
        "recd_dpp_trainer_delivered_samples_total",
        "Samples the sink pushed onto a trainer lane.",
        &labels,
        lane.delivered_samples as f64,
    );
    out.counter(
        "recd_dpp_trainer_consumed_batches_total",
        "Batches the trainer pulled from its lane.",
        &labels,
        lane.consumed_batches as f64,
    );
}

/// Projects a [`DppSnapshot`] into `recd_dpp_*` families: throughput and
/// progress counters, queue-depth and worker gauges, scale events, pool
/// counters, and per-trainer lane state.
pub fn collect_snapshot(snap: &DppSnapshot, out: &mut MetricsBuf) {
    out.counter(
        "recd_dpp_files_submitted_total",
        "Files accepted into the fill queue.",
        &[],
        snap.files_submitted as f64,
    );
    out.counter(
        "recd_dpp_partitions_ingested_total",
        "Landed partitions ingested through the continuous-ETL feed path.",
        &[],
        snap.partitions_ingested as f64,
    );
    out.counter(
        "recd_dpp_duplicate_ingests_total",
        "Already-ingested partitions offered again and skipped (replay dedup).",
        &[],
        snap.duplicate_ingests as f64,
    );
    out.counter(
        "recd_dpp_files_filled_total",
        "Files fully decoded by fill workers.",
        &[],
        snap.files_filled as f64,
    );
    out.counter(
        "recd_dpp_rows_routed_total",
        "Rows routed to shard accumulators.",
        &[],
        snap.rows_routed as f64,
    );
    out.counter(
        "recd_dpp_batches_out_total",
        "Deduplicated batches emitted by compute workers.",
        &[],
        snap.batches_out as f64,
    );
    out.counter(
        "recd_dpp_samples_out_total",
        "Samples contained in emitted batches.",
        &[],
        snap.samples_out as f64,
    );
    out.counter(
        "recd_dpp_egress_bytes_total",
        "Preprocessed tensor bytes sent toward trainers.",
        &[],
        snap.egress_bytes as f64,
    );
    out.counter(
        "recd_dpp_errors_total",
        "Stage errors (failed fills or conversions).",
        &[],
        snap.errors as f64,
    );
    out.gauge(
        "recd_dpp_uptime_seconds",
        "Seconds since the service started.",
        &[],
        snap.elapsed_seconds,
    );
    out.gauge(
        "recd_dpp_dedupe_factor",
        "Average in-batch dedup factor of emitted batches.",
        &[],
        snap.dedupe_factor,
    );
    out.gauge(
        "recd_dpp_samples_per_second",
        "Emitted samples per wall-clock second since service start.",
        &[],
        snap.samples_per_second,
    );
    for (queue, depth) in [
        ("input", snap.input_queue_depth),
        ("filled", snap.filled_queue_depth),
        ("work", snap.work_queue_depth),
        ("output", snap.output_queue_depth),
    ] {
        out.gauge(
            "recd_dpp_queue_depth",
            "Current depth of each bounded pipeline queue.",
            &[("queue", queue)],
            depth as f64,
        );
    }
    for (pool, live) in [
        ("fill", snap.fill_workers_live),
        ("compute", snap.compute_workers_live),
    ] {
        out.gauge(
            "recd_dpp_workers_live",
            "Workers currently live in each elastic pool.",
            &[("pool", pool)],
            live as f64,
        );
    }
    for (direction, count) in [("up", snap.scale_ups), ("down", snap.scale_downs)] {
        out.counter(
            "recd_dpp_scale_events_total",
            "Pool resizes performed by the scaling controller, by direction.",
            &[("direction", direction)],
            count as f64,
        );
    }
    collect_pool(&snap.batch_pool, "batch", out);
    collect_pool(&snap.converted_pool, "converted", out);
    collect_pool(&snap.blob_pool, "blob", out);
    for lane in &snap.trainers {
        collect_lane(lane, out);
    }
}

impl Collector for SnapshotSource {
    fn collect(&self, out: &mut MetricsBuf) {
        collect_snapshot(&self.snapshot(), out);
        out.histogram(
            "recd_dpp_convert_latency_seconds",
            "Per-batch IKJT conversion latency across compute workers.",
            &[],
            self.convert_latency(),
        );
        out.histogram(
            "recd_dpp_process_latency_seconds",
            "Per-batch preprocessing latency across compute workers.",
            &[],
            self.process_latency(),
        );
        self.reader_metrics().collect_into(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recd_obs::{render_families, sample_value};

    fn snapshot_fixture() -> DppSnapshot {
        DppSnapshot {
            elapsed_seconds: 2.0,
            files_submitted: 8,
            partitions_ingested: 3,
            duplicate_ingests: 1,
            files_filled: 7,
            rows_routed: 1_000,
            batches_out: 40,
            samples_out: 2_000,
            egress_bytes: 65_536,
            samples_per_second: 1_000.0,
            dedupe_factor: 1.8,
            input_queue_depth: 1,
            filled_queue_depth: 2,
            work_queue_depth: 3,
            output_queue_depth: 4,
            fill_workers_live: 2,
            compute_workers_live: 5,
            scale_ups: 2,
            scale_downs: 1,
            trainers: vec![TrainerLaneSnapshot {
                trainer: 0,
                queue_depth: 6,
                delivered_batches: 20,
                delivered_samples: 1_000,
                consumed_batches: 14,
            }],
            batch_pool: PoolStats {
                hits: 90,
                misses: 10,
                recycled: 85,
                discarded: 5,
                trimmed: 0,
                steals: 2,
                capacity: 16,
            },
            converted_pool: PoolStats::default(),
            blob_pool: PoolStats::default(),
            errors: 0,
        }
    }

    #[test]
    fn snapshot_maps_to_labeled_families() {
        let mut buf = MetricsBuf::new();
        collect_snapshot(&snapshot_fixture(), &mut buf);
        let families = buf.into_families();
        assert_eq!(
            sample_value(&families, "recd_dpp_samples_out_total", &[]),
            Some(2_000.0)
        );
        assert_eq!(
            sample_value(&families, "recd_dpp_queue_depth", &[("queue", "work")]),
            Some(3.0)
        );
        assert_eq!(
            sample_value(&families, "recd_dpp_workers_live", &[("pool", "compute")]),
            Some(5.0)
        );
        assert_eq!(
            sample_value(
                &families,
                "recd_dpp_pool_acquires_total",
                &[("pool", "batch"), ("outcome", "hit")]
            ),
            Some(90.0)
        );
        assert_eq!(
            sample_value(
                &families,
                "recd_dpp_trainer_delivered_samples_total",
                &[("trainer", "0")]
            ),
            Some(1_000.0)
        );
        // The exposition renders with sorted labels and HELP/TYPE lines.
        let text = render_families(&families);
        assert!(text.contains("# TYPE recd_dpp_queue_depth gauge"));
        assert!(text.contains("recd_dpp_queue_depth{queue=\"input\"} 1\n"));
        assert!(text.contains("recd_dpp_scale_events_total{direction=\"up\"} 2\n"));
    }
}
