//! A bounded multi-producer multi-consumer channel with blocking
//! backpressure — the connective tissue between the service's pipeline
//! stages.
//!
//! Semantics:
//!
//! * [`Sender::send`] blocks while the queue is at capacity (backpressure);
//!   it fails only when every receiver is gone.
//! * [`Receiver::recv`] blocks while the queue is empty; it returns [`None`]
//!   once every sender is gone *and* the queue has drained, so shutdown is
//!   simply "drop the senders and keep draining".
//! * Both handles are cloneable; drop bookkeeping is automatic.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

struct Shared<T> {
    queue: Mutex<VecDeque<T>>,
    not_full: Condvar,
    not_empty: Condvar,
    capacity: usize,
    senders: AtomicUsize,
    receivers: AtomicUsize,
    /// Mirror of `queue.len()`, maintained while the queue lock is held, so
    /// gauges read depths without contending on the hot-path mutex.
    depth: AtomicUsize,
    peak_depth: AtomicUsize,
}

/// The sending half of a bounded channel.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half of a bounded channel.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Error returned by [`Sender::send`] when every receiver is gone; carries
/// the rejected item back to the caller.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Outcome of [`Receiver::recv_timeout`].
#[derive(Debug, PartialEq, Eq)]
pub enum RecvTimeout<T> {
    /// An item arrived (or was already queued).
    Item(T),
    /// The wait elapsed with the queue still empty and senders still alive.
    Timeout,
    /// Every sender is gone and the queue has drained: end of stream.
    Disconnected,
}

/// Creates a bounded channel with the given capacity (minimum 1).
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        queue: Mutex::new(VecDeque::new()),
        not_full: Condvar::new(),
        not_empty: Condvar::new(),
        capacity: capacity.max(1),
        senders: AtomicUsize::new(1),
        receivers: AtomicUsize::new(1),
        depth: AtomicUsize::new(0),
        peak_depth: AtomicUsize::new(0),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Shared<T> {
    /// Publishes the queue depth after a push or pop. Must be called while
    /// the queue lock is still held so the depth mirror and the queue can
    /// never disagree, and the peak is updated with a single `fetch_max` —
    /// the earlier load-then-store scheme left a window where two concurrent
    /// senders could both read a stale peak and the larger depth lost the
    /// race, under-reporting the high-water mark.
    fn note_depth(&self, depth: usize) {
        self.depth.store(depth, Ordering::Release);
        self.peak_depth.fetch_max(depth, Ordering::AcqRel);
    }

    fn depth(&self) -> usize {
        self.depth.load(Ordering::Acquire)
    }

    fn peak(&self) -> usize {
        self.peak_depth.load(Ordering::Acquire)
    }
}

impl<T> Sender<T> {
    /// Sends an item, blocking while the channel is full. Returns the item
    /// if every receiver has been dropped.
    ///
    /// # Errors
    ///
    /// Returns [`SendError`] carrying `item` when no receiver remains.
    pub fn send(&self, item: T) -> Result<(), SendError<T>> {
        let shared = &self.shared;
        let mut queue = shared.queue.lock().expect("channel lock poisoned");
        loop {
            if shared.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(item));
            }
            if queue.len() < shared.capacity {
                queue.push_back(item);
                shared.note_depth(queue.len());
                drop(queue);
                shared.not_empty.notify_one();
                return Ok(());
            }
            queue = shared.not_full.wait(queue).expect("channel lock poisoned");
        }
    }

    /// Attempts to send without blocking. Returns the item if the channel is
    /// full or every receiver is gone.
    ///
    /// # Errors
    ///
    /// Returns [`SendError`] carrying `item` when the queue is at capacity
    /// or no receiver remains.
    pub fn try_send(&self, item: T) -> Result<(), SendError<T>> {
        let shared = &self.shared;
        let mut queue = shared.queue.lock().expect("channel lock poisoned");
        if shared.receivers.load(Ordering::Acquire) == 0 || queue.len() >= shared.capacity {
            return Err(SendError(item));
        }
        queue.push_back(item);
        shared.note_depth(queue.len());
        drop(queue);
        shared.not_empty.notify_one();
        Ok(())
    }

    /// Current queue depth (a live gauge, racy by nature).
    pub fn len(&self) -> usize {
        self.shared.depth()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// High-water mark of the queue depth since creation.
    pub fn peak_depth(&self) -> usize {
        self.shared.peak()
    }

    /// Whether every receiver is gone, i.e. any send would fail. Lets a
    /// dispatcher distinguish "lane full" from "lane abandoned" without
    /// consuming the item in a failed send.
    pub fn is_closed(&self) -> bool {
        self.shared.receivers.load(Ordering::Acquire) == 0
    }

    /// A passive depth gauge on this channel (see [`Gauge`]).
    pub fn gauge(&self) -> Gauge<T> {
        Gauge {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Receiver<T> {
    /// Receives the next item, blocking while the channel is empty. Returns
    /// [`None`] once all senders are gone and the queue has drained.
    pub fn recv(&self) -> Option<T> {
        let shared = &self.shared;
        let mut queue = shared.queue.lock().expect("channel lock poisoned");
        loop {
            if let Some(item) = queue.pop_front() {
                shared.note_depth(queue.len());
                drop(queue);
                shared.not_full.notify_one();
                return Some(item);
            }
            if shared.senders.load(Ordering::Acquire) == 0 {
                return None;
            }
            queue = shared.not_empty.wait(queue).expect("channel lock poisoned");
        }
    }

    /// Receives the next item without blocking. Returns [`None`] when the
    /// queue is currently empty, whether or not senders remain.
    pub fn try_recv(&self) -> Option<T> {
        let shared = &self.shared;
        let mut queue = shared.queue.lock().expect("channel lock poisoned");
        let item = queue.pop_front()?;
        shared.note_depth(queue.len());
        drop(queue);
        shared.not_full.notify_one();
        Some(item)
    }

    /// Receives the next item, blocking at most `timeout`. Distinguishes an
    /// empty-but-alive channel ([`RecvTimeout::Timeout`]) from end of stream
    /// ([`RecvTimeout::Disconnected`]) so pollers — dynamically scaled
    /// workers checking for retirement, the fan-out sink retrying parked
    /// batches — can wake periodically without spinning.
    pub fn recv_timeout(&self, timeout: Duration) -> RecvTimeout<T> {
        let shared = &self.shared;
        let deadline = std::time::Instant::now() + timeout;
        let mut queue = shared.queue.lock().expect("channel lock poisoned");
        loop {
            if let Some(item) = queue.pop_front() {
                shared.note_depth(queue.len());
                drop(queue);
                shared.not_full.notify_one();
                return RecvTimeout::Item(item);
            }
            if shared.senders.load(Ordering::Acquire) == 0 {
                return RecvTimeout::Disconnected;
            }
            let now = std::time::Instant::now();
            let Some(remaining) = deadline
                .checked_duration_since(now)
                .filter(|d| !d.is_zero())
            else {
                return RecvTimeout::Timeout;
            };
            let (guard, _timed_out) = shared
                .not_empty
                .wait_timeout(queue, remaining)
                .expect("channel lock poisoned");
            queue = guard;
        }
    }

    /// Current queue depth (a live gauge, racy by nature).
    pub fn len(&self) -> usize {
        self.shared.depth()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// High-water mark of the queue depth since creation.
    pub fn peak_depth(&self) -> usize {
        self.shared.peak()
    }

    /// A passive depth gauge on this channel (see [`Gauge`]).
    pub fn gauge(&self) -> Gauge<T> {
        Gauge {
            shared: Arc::clone(&self.shared),
        }
    }
}

/// A passive observer of a channel's queue depth. Unlike a [`Receiver`]
/// clone, a gauge does **not** participate in disconnect bookkeeping: it
/// never keeps a channel "open", so sender-side failure detection (and
/// therefore teardown after a worker panic) behaves exactly as if the gauge
/// did not exist.
pub struct Gauge<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Clone for Gauge<T> {
    fn clone(&self) -> Self {
        Self {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Gauge<T> {
    /// Current queue depth (a live gauge, racy by nature).
    pub fn len(&self) -> usize {
        self.shared.depth()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// High-water mark of the queue depth since creation.
    pub fn peak_depth(&self) -> usize {
        self.shared.peak()
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.senders.fetch_add(1, Ordering::AcqRel);
        Self {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.receivers.fetch_add(1, Ordering::AcqRel);
        Self {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last sender: wake every blocked receiver so it can observe
            // end-of-stream.
            let _guard = self.shared.queue.lock();
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        if self.shared.receivers.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last receiver: wake every blocked sender so it can fail fast.
            let _guard = self.shared.queue.lock();
            self.shared.not_full.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    #[test]
    fn fifo_order_and_drain() {
        let (tx, rx) = bounded(4);
        for i in 0..4 {
            tx.send(i).unwrap();
        }
        drop(tx);
        assert_eq!(rx.recv(), Some(0));
        assert_eq!(rx.recv(), Some(1));
        assert_eq!(rx.recv(), Some(2));
        assert_eq!(rx.recv(), Some(3));
        assert_eq!(rx.recv(), None);
    }

    #[test]
    fn full_channel_blocks_producer_until_drained() {
        let (tx, rx) = bounded(2);
        let sent = Arc::new(AtomicUsize::new(0));
        let producer_sent = Arc::clone(&sent);
        let producer = std::thread::spawn(move || {
            for i in 0..5 {
                tx.send(i).unwrap();
                producer_sent.fetch_add(1, Ordering::SeqCst);
            }
        });
        // Give the producer time to hit the capacity wall: it can complete
        // at most `capacity` sends while nothing drains.
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while sent.load(Ordering::SeqCst) < 2 && std::time::Instant::now() < deadline {
            std::thread::yield_now();
        }
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(
            sent.load(Ordering::SeqCst),
            2,
            "producer must stall at capacity"
        );
        // Draining unblocks it and preserves order.
        let drained: Vec<i32> = std::iter::from_fn(|| rx.recv()).collect();
        producer.join().unwrap();
        assert_eq!(drained, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn try_send_reports_full() {
        let (tx, rx) = bounded(1);
        tx.try_send(1).unwrap();
        assert_eq!(tx.try_send(2), Err(SendError(2)));
        assert_eq!(rx.recv(), Some(1));
        tx.try_send(3).unwrap();
        assert_eq!(tx.peak_depth(), 1);
    }

    #[test]
    fn dropped_receiver_fails_senders() {
        let (tx, rx) = bounded(1);
        drop(rx);
        assert_eq!(tx.send(9), Err(SendError(9)));
    }

    #[test]
    fn gauges_do_not_keep_a_channel_open() {
        // The liveness property monitoring relies on: if every real receiver
        // is gone (e.g. all workers panicked), senders must fail fast even
        // while gauges are still alive — otherwise a monitor would convert a
        // worker crash into a permanent producer hang.
        let (tx, rx) = bounded(2);
        let gauge = rx.gauge();
        tx.send(1).unwrap();
        assert_eq!(gauge.len(), 1);
        drop(rx);
        assert_eq!(tx.send(2), Err(SendError(2)));
        assert_eq!(gauge.peak_depth(), 1);
        assert!(!gauge.is_empty());
    }

    #[test]
    fn try_recv_and_recv_timeout_cover_all_outcomes() {
        let (tx, rx) = bounded(2);
        assert_eq!(rx.try_recv(), None);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            RecvTimeout::Timeout
        );
        tx.send(7).unwrap();
        assert_eq!(rx.try_recv(), Some(7));
        tx.send(8).unwrap();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(100)),
            RecvTimeout::Item(8)
        );
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            RecvTimeout::<i32>::Disconnected
        );
    }

    #[test]
    fn depth_gauge_tracks_pushes_and_pops() {
        let (tx, rx) = bounded(4);
        let gauge = rx.gauge();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(gauge.len(), 2);
        assert_eq!(rx.recv(), Some(1));
        assert_eq!(gauge.len(), 1);
        assert_eq!(rx.try_recv(), Some(2));
        assert_eq!(gauge.len(), 0);
        assert!(gauge.is_empty());
        assert_eq!(gauge.peak_depth(), 2);
    }

    #[test]
    fn multiple_consumers_partition_the_stream() {
        let (tx, rx) = bounded(8);
        let rx2 = rx.clone();
        let consumer = |rx: Receiver<u64>| {
            std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(v) = rx.recv() {
                    got.push(v);
                }
                got
            })
        };
        let a = consumer(rx);
        let b = consumer(rx2);
        for i in 0..100u64 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let mut all = a.join().unwrap();
        all.extend(b.join().unwrap());
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }
}
