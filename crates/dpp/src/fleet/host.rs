//! Per-host runtime: one nearly-unchanged [`DppService`] incarnation plus
//! the collector thread that rebases its shard-pinned lane onto the fleet's
//! global sequence space and forwards onto the fleet trainer lanes.

use super::obs::FleetCounters;
use super::FleetConfig;
use crate::channel::RecvTimeout;
use crate::checkpoint::DppCheckpoint;
use crate::pool::BatchPool;
use crate::service::{DppHandle, DppService};
use crate::sink::{LaneSender, TrainerAssignPolicy, TrainerBatch, TrainerHandle};
use recd_core::ConvertedBatch;
use recd_data::Schema;
use recd_storage::TableStore;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// How often a quiet collector re-checks its stop flag.
const COLLECTOR_POLL: Duration = Duration::from_millis(2);

/// State shared between the coordinator and every host collector: the
/// fleet's trainer lanes and the per-shard global delivery watermark that
/// makes forwarding exactly-once.
pub(super) struct FleetShared {
    /// `delivered_through[s]` = the next global sequence number expected for
    /// shard `s`. A collector holding a batch with a smaller global seq is
    /// seeing a replayed/late duplicate and drops it.
    pub(super) delivered_through: Mutex<Vec<u64>>,
    /// Sending halves of the fleet trainer lanes (`trainer = shard % N`).
    pub(super) lanes: Vec<LaneSender>,
}

/// One live incarnation of a host: the service handle (feed side) plus its
/// collector thread (delivery side).
pub(super) struct HostRuntime {
    pub(super) handle: DppHandle,
    pub(super) collector: CollectorHandle,
}

/// The coordinator's grip on one collector thread.
pub(super) struct CollectorHandle {
    thread: JoinHandle<()>,
    stop: Arc<AtomicBool>,
    /// Host-lane batches fully processed (deduped or forwarded). The barrier
    /// quiesce spins until this catches up with the host lane's delivered
    /// count.
    pub(super) processed: Arc<AtomicU64>,
    /// `bases[s]`: global seq of this incarnation's host-local seq 0 for
    /// shard `s`. Set by the coordinator at placement time (collector holds
    /// no in-flight work for a shard when its base changes — placements
    /// happen at barriers or onto hosts that never owned the shard this
    /// interval).
    pub(super) bases: Arc<Mutex<Vec<u64>>>,
    /// `local_seen[s]`: host-local batches of shard `s` this incarnation has
    /// delivered — the collector's resequence cursor, read by the
    /// coordinator to compute rebases.
    pub(super) local_seen: Arc<Mutex<Vec<u64>>>,
}

impl CollectorHandle {
    /// Hard-stops the collector (zombie teardown): sets the stop flag and
    /// joins. Whatever is still parked on the host lane is left for the
    /// host's own sink accounting.
    pub(super) fn stop_and_join(self) {
        self.stop.store(true, Ordering::Release);
        let _ = self.thread.join();
    }

    /// Joins after a graceful host finish: the collector drains the lane and
    /// exits on disconnect, so every delivery is forwarded first.
    pub(super) fn join_after_drain(self) {
        let _ = self.thread.join();
    }
}

/// Starts one host incarnation: a full `shards`-shard service with a single
/// shard-pinned trainer lane, resumed from `checkpoint`, plus its collector.
#[allow(clippy::too_many_arguments)]
pub(super) fn start_host(
    host: usize,
    config: &FleetConfig,
    shards: usize,
    store: &Arc<TableStore>,
    schema: &Schema,
    checkpoint: DppCheckpoint,
    shared: &Arc<FleetShared>,
    counters: &Arc<FleetCounters>,
) -> HostRuntime {
    let mut host_cfg = config.host.clone();
    host_cfg.shards = shards;
    // One pinned lane per host: the collector is the lane's only consumer
    // and re-fans onto the fleet lanes, so per-shard order survives intact.
    host_cfg.trainers = 1;
    host_cfg.assign_policy = TrainerAssignPolicy::ShardPinned;
    let mut handle = DppService::resume(host_cfg, Arc::clone(store), schema.clone(), checkpoint);
    let trainer = handle
        .take_trainers()
        .pop()
        .expect("host service has exactly one lane");
    let converted_pool = handle.converted_pool();

    let stop = Arc::new(AtomicBool::new(false));
    let processed = Arc::new(AtomicU64::new(0));
    let bases = Arc::new(Mutex::new(vec![0u64; shards]));
    let local_seen = Arc::new(Mutex::new(vec![0u64; shards]));

    let thread = {
        let stop = Arc::clone(&stop);
        let processed = Arc::clone(&processed);
        let bases = Arc::clone(&bases);
        let local_seen = Arc::clone(&local_seen);
        let shared = Arc::clone(shared);
        let counters = Arc::clone(counters);
        std::thread::Builder::new()
            .name(format!("fleet-h{host}"))
            .spawn(move || {
                collector_loop(
                    trainer,
                    converted_pool,
                    stop,
                    processed,
                    bases,
                    local_seen,
                    shared,
                    counters,
                )
            })
            .expect("spawn fleet collector")
    };

    HostRuntime {
        handle,
        collector: CollectorHandle {
            thread,
            stop,
            processed,
            bases,
            local_seen,
        },
    }
}

/// The collector body: pull from the host's single pinned lane, rebase each
/// batch's host-local `(shard, seq)` onto the global sequence, dedup against
/// the fleet watermark, and forward onto the owning fleet lane.
#[allow(clippy::too_many_arguments)]
fn collector_loop(
    trainer: TrainerHandle,
    converted_pool: Arc<BatchPool<ConvertedBatch>>,
    stop: Arc<AtomicBool>,
    processed: Arc<AtomicU64>,
    bases: Arc<Mutex<Vec<u64>>>,
    local_seen: Arc<Mutex<Vec<u64>>>,
    shared: Arc<FleetShared>,
    counters: Arc<FleetCounters>,
) {
    loop {
        if stop.load(Ordering::Acquire) {
            return;
        }
        let item = match trainer.recv_timeout(COLLECTOR_POLL) {
            RecvTimeout::Item(item) => item,
            RecvTimeout::Timeout => continue,
            RecvTimeout::Disconnected => return,
        };
        let shard = item.shard;
        let global = {
            // The host's sink resequences per shard, so local seqs arrive
            // contiguously; the cursor doubles as the count already seen.
            let mut seen = local_seen.lock().expect("local_seen lock");
            assert_eq!(
                item.seq, seen[shard],
                "host lane must deliver shard {shard} in local sequence order"
            );
            seen[shard] += 1;
            bases.lock().expect("bases lock")[shard] + item.seq
        };
        {
            // Dedup + forward under one lock so global per-shard order on
            // the fleet lane is preserved even while a zombie and its
            // replacement race at the watermark frontier. The lane send can
            // block on backpressure while held — that simply serializes
            // collectors the same way one sink would.
            let mut through = shared.delivered_through.lock().expect("watermark lock");
            if global < through[shard] {
                counters.note_duplicate_dropped();
                converted_pool.recycle(item.batch);
            } else {
                assert_eq!(
                    global, through[shard],
                    "shard {shard} watermark gap: replay must regenerate contiguously"
                );
                through[shard] += 1;
                let lane_idx = shard % shared.lanes.len();
                let lane = &shared.lanes[lane_idx];
                let samples = item.batch.batch_size as u64;
                let forwarded = TrainerBatch {
                    trainer: lane_idx,
                    shard,
                    seq: global,
                    batch: item.batch,
                };
                if lane.shared.is_dead() {
                    lane.shared.note_dropped();
                    converted_pool.recycle(forwarded.batch);
                } else {
                    match lane.tx.send(forwarded) {
                        Ok(()) => {
                            lane.shared.note_delivery(1, samples);
                            counters.note_forwarded(samples);
                        }
                        Err(crate::channel::SendError(rejected)) => {
                            lane.shared.mark_dead();
                            lane.shared.note_dropped();
                            converted_pool.recycle(rejected.batch);
                        }
                    }
                }
            }
        }
        processed.fetch_add(1, Ordering::AcqRel);
    }
}
