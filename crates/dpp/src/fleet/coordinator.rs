//! The fleet coordinator: global shard→host placement, heartbeat-based
//! failure detection, bounded replay, rejoin, and work-stealing rebalance.

use super::host::{start_host, FleetShared, HostRuntime};
use super::obs::{FleetCounters, HostProbe};
use super::{FleetConfig, FleetOutput, FleetReport};
use crate::channel::{bounded, Gauge};
use crate::checkpoint::DppCheckpoint;
use crate::metrics::{DppReport, TrainerLaneReport};
use crate::sink::{LaneSender, LaneShared, TrainerBatch, TrainerHandle};
use recd_data::Schema;
use recd_obs::MetricsRegistry;
use recd_storage::{StoredPartition, TableStore};
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long the barrier quiesce sleeps between collector-progress checks.
const QUIESCE_POLL: Duration = Duration::from_micros(200);

/// Whether a host is *actually* reachable — ground truth the coordinator
/// only observes indirectly through heartbeats and barrier rounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Reach {
    Up,
    /// Unreachable until the coordinator clock passes `until_ms`; the host
    /// process keeps running (and becomes a zombie if declared dead).
    Partitioned {
        until_ms: u64,
    },
    /// Killed: the process is gone.
    Down,
}

/// One host slot: the (possibly absent) running incarnation plus the
/// coordinator's bookkeeping about it.
struct HostSlot {
    runtime: Option<HostRuntime>,
    /// Coordinator belief: a dead host receives no traffic and its shards
    /// live elsewhere until `rejoin-host`.
    live: bool,
    reachable: Reach,
    last_beat_ms: u64,
    /// Files addressed to this host while it was unreachable, flushed in
    /// order if the partition heals before detection.
    pending: Vec<(usize, String)>,
    /// The coordinator's last barrier checkpoint for this host — what a
    /// rejoining incarnation resumes from.
    checkpoint: DppCheckpoint,
    registry: Arc<MetricsRegistry>,
    probe: Arc<HostProbe>,
}

/// Starts [`FleetHandle`]s.
#[derive(Debug)]
pub struct DppFleet;

impl DppFleet {
    /// Starts `config.hosts` host services over one shared table store and
    /// returns the coordinator handle. Every host runs the full global shard
    /// set; shard `s` initially lives on host `s % hosts`.
    pub fn start(config: FleetConfig, store: Arc<TableStore>, schema: Schema) -> FleetHandle {
        assert!(config.hosts >= 1, "a fleet needs at least one host");
        let shards = config.host.shards.max(1);
        let counters = Arc::new(FleetCounters::new(config.hosts));

        let mut lanes = Vec::new();
        let mut trainers = Vec::new();
        let mut lane_shared = Vec::new();
        let mut lane_gauges = Vec::new();
        for trainer in 0..config.trainers.max(1) {
            let (tx, rx) = bounded::<TrainerBatch>(config.trainer_queue_depth.max(1));
            let shared = Arc::new(LaneShared::default());
            lane_gauges.push(rx.gauge());
            trainers.push(TrainerHandle::new(trainer, rx, Arc::clone(&shared)));
            lane_shared.push(Arc::clone(&shared));
            lanes.push(LaneSender { tx, shared });
        }
        let shared = Arc::new(FleetShared {
            delivered_through: Mutex::new(vec![0u64; shards]),
            lanes,
        });

        let mut slots = Vec::new();
        for host in 0..config.hosts {
            let runtime = start_host(
                host,
                &config,
                shards,
                &store,
                &schema,
                DppCheckpoint::default(),
                &shared,
                &counters,
            );
            let probe = Arc::new(HostProbe::default());
            probe.set(runtime.handle.snapshot_source());
            let registry = Arc::new(MetricsRegistry::new());
            registry.register(Arc::clone(&probe) as Arc<dyn recd_obs::Collector>);
            slots.push(HostSlot {
                runtime: Some(runtime),
                live: true,
                reachable: Reach::Up,
                last_beat_ms: 0,
                pending: Vec::new(),
                checkpoint: DppCheckpoint::default(),
                registry,
                probe,
            });
        }

        let hosts = config.hosts;
        let handle = FleetHandle {
            config,
            shards,
            store,
            schema,
            counters,
            shared,
            slots,
            placement: (0..shards).map(|s| s % hosts).collect(),
            cuts: vec![0u64; shards],
            interval_files: vec![Vec::new(); shards],
            ingested: HashSet::new(),
            partitions_ingested: 0,
            duplicate_ingests: 0,
            next_file_idx: 0,
            now_ms: 0,
            trainers,
            lane_shared,
            lane_gauges,
            rebalance_requests: Arc::new(AtomicBool::new(false)),
            reapers: Vec::new(),
            started: Instant::now(),
        };
        handle.refresh_owned_gauges();
        handle
    }
}

/// A cloneable control endpoint for a running fleet — currently carries the
/// on-demand rebalance request, which the coordinator applies at the next
/// barrier (the only point where every in-flight batch is accounted).
#[derive(Debug, Clone)]
pub struct FleetController {
    rebalance: Arc<AtomicBool>,
}

impl FleetController {
    /// Asks the coordinator to run one work-stealing rebalance at the next
    /// [`FleetHandle::flush_partition`] barrier. Safe to call from any
    /// thread, including while a barrier is in flight — the request is
    /// consumed by whichever barrier observes it first.
    pub fn request_rebalance(&self) {
        self.rebalance.store(true, Ordering::Release);
    }
}

/// The feeding/monitoring handle of a running [`DppFleet`]. Single-threaded
/// like [`DppHandle`](crate::DppHandle): submissions, ticks, faults, and
/// barriers all happen from the coordinator's thread.
pub struct FleetHandle {
    config: FleetConfig,
    shards: usize,
    store: Arc<TableStore>,
    schema: Schema,
    counters: Arc<FleetCounters>,
    shared: Arc<FleetShared>,
    slots: Vec<HostSlot>,
    /// `placement[s]` = host that currently owns shard `s`.
    placement: Vec<usize>,
    /// Per-shard global seq cut at the last barrier.
    cuts: Vec<u64>,
    /// Per-shard files submitted since the last barrier — the bounded
    /// replay log.
    interval_files: Vec<Vec<String>>,
    ingested: HashSet<String>,
    partitions_ingested: u64,
    duplicate_ingests: u64,
    next_file_idx: u64,
    now_ms: u64,
    trainers: Vec<TrainerHandle>,
    lane_shared: Vec<Arc<LaneShared>>,
    lane_gauges: Vec<Gauge<TrainerBatch>>,
    rebalance_requests: Arc<AtomicBool>,
    /// Joiners for torn-down incarnations' `finish()` calls.
    reapers: Vec<JoinHandle<()>>,
    started: Instant,
}

impl FleetHandle {
    /// Submits one stored file. The coordinator owns the global placement:
    /// file `i` of the submission sequence belongs to shard `i % S`
    /// regardless of which host serves it, which is what keeps batch
    /// composition independent of fleet topology and failures.
    pub fn submit_file(&mut self, path: impl Into<String>) {
        let path = path.into();
        let shard = (self.next_file_idx % self.shards as u64) as usize;
        self.next_file_idx += 1;
        self.interval_files[shard].push(path.clone());
        self.route(shard, path);
    }

    /// Submits every file of a stored partition, in order.
    pub fn submit_partition(&mut self, partition: &StoredPartition) {
        for file in &partition.files {
            self.submit_file(file.clone());
        }
    }

    /// Ingests one freshly landed partition exactly once (fleet-level dedup
    /// by blob-store prefix, same contract as
    /// [`DppHandle::ingest_partition`](crate::DppHandle::ingest_partition)).
    pub fn ingest_partition(&mut self, partition: &StoredPartition) -> bool {
        let key = StoredPartition::prefix(&partition.table, partition.hour);
        if !self.ingested.insert(key) {
            self.duplicate_ingests += 1;
            return false;
        }
        self.partitions_ingested += 1;
        self.submit_partition(partition);
        true
    }

    fn route(&mut self, shard: usize, path: String) {
        let host = self.placement[shard];
        let slot = &mut self.slots[host];
        if slot.live && slot.reachable == Reach::Up {
            slot.runtime
                .as_mut()
                .expect("a live, reachable host has a runtime")
                .handle
                .submit_file_to_shard(path, shard);
        } else {
            // Unreachable (or killed-but-undetected): the file waits here
            // until the partition heals or detection replays the interval.
            slot.pending.push((shard, path));
        }
    }

    /// Advances the coordinator clock: heals expired partitions, stamps a
    /// heartbeat for every reachable live host, and declares dead any live
    /// host whose last beat is *strictly* older than the timeout (a beat
    /// exactly at the boundary keeps the host alive).
    pub fn tick(&mut self, now_ms: u64) {
        self.now_ms = self.now_ms.max(now_ms);
        let now = self.now_ms;
        self.counters.set_now(now);
        for host in 0..self.slots.len() {
            let Reach::Partitioned { until_ms } = self.slots[host].reachable else {
                continue;
            };
            if now < until_ms {
                continue;
            }
            if self.slots[host].live {
                // Healed before anyone noticed: a flap. Flush what queued.
                self.slots[host].reachable = Reach::Up;
                self.counters.note_flap();
                self.counters.set_host_up(host, true);
                let pending = std::mem::take(&mut self.slots[host].pending);
                for (shard, path) in pending {
                    self.slots[host]
                        .runtime
                        .as_mut()
                        .expect("a flapping host kept its runtime")
                        .handle
                        .submit_file_to_shard(path, shard);
                }
            } else {
                // The partition outlived detection: the incarnation is a
                // zombie whose late work the watermark already absorbed.
                self.slots[host].reachable = Reach::Up;
                self.teardown_runtime(host);
            }
        }
        for host in 0..self.slots.len() {
            let slot = &mut self.slots[host];
            if slot.live && slot.reachable == Reach::Up {
                slot.last_beat_ms = now;
                self.counters.note_heartbeat(host, now);
            }
        }
        for host in 0..self.slots.len() {
            if self.slots[host].live
                && now.saturating_sub(self.slots[host].last_beat_ms)
                    > self.config.heartbeat_timeout_ms
            {
                self.declare_dead(host);
            }
        }
    }

    /// Applies a `kill-host` fault: the host process dies *now*; the
    /// coordinator only finds out when heartbeats go stale (or a barrier
    /// round fails).
    pub fn kill_host(&mut self, host: usize) {
        let host = host % self.slots.len();
        self.counters.note_kill();
        self.counters.set_host_up(host, false);
        self.slots[host].reachable = Reach::Down;
        self.teardown_runtime(host);
    }

    /// Applies a `partition-host` fault: the host stays up but is
    /// unreachable for `ms` of coordinator-clock time. Overlapping
    /// partitions extend the outage.
    pub fn partition_host(&mut self, host: usize, ms: u64) {
        let host = host % self.slots.len();
        let slot = &mut self.slots[host];
        if slot.reachable == Reach::Down {
            return;
        }
        let until = self.now_ms.saturating_add(ms.max(1));
        slot.reachable = match slot.reachable {
            Reach::Partitioned { until_ms } => Reach::Partitioned {
                until_ms: until_ms.max(until),
            },
            _ => Reach::Partitioned { until_ms: until },
        };
        self.counters.note_partition();
        self.counters.set_host_up(host, false);
    }

    /// Applies a `rejoin-host` fault: restarts the host as a fresh
    /// incarnation resumed from the coordinator's last checkpoint for it.
    /// The rejoined host owns no shards until the next rebalance steals some
    /// back. A host that is still up and reachable is left alone; a host
    /// that is down but not yet *declared* dead is declared first (the
    /// restart is itself proof the old incarnation is gone).
    pub fn rejoin_host(&mut self, host: usize) {
        let host = host % self.slots.len();
        if self.slots[host].live && self.slots[host].reachable == Reach::Up {
            return;
        }
        if self.slots[host].live {
            self.declare_dead(host);
        }
        self.teardown_runtime(host);
        let runtime = start_host(
            host,
            &self.config,
            self.shards,
            &self.store,
            &self.schema,
            self.slots[host].checkpoint.clone(),
            &self.shared,
            &self.counters,
        );
        self.slots[host].probe.set(runtime.handle.snapshot_source());
        self.slots[host].runtime = Some(runtime);
        self.slots[host].live = true;
        self.slots[host].reachable = Reach::Up;
        self.slots[host].last_beat_ms = self.now_ms;
        self.counters.note_rejoin();
        self.counters.note_heartbeat(host, self.now_ms);
        self.counters.set_host_up(host, true);
        self.counters.set_hosts_live(self.live_count());
        self.refresh_owned_gauges();
    }

    /// Fleet-wide partition barrier. A barrier is a contact round: any live
    /// host that cannot be reached fails it and is declared dead on the
    /// spot. Every live host then flushes, the coordinator quiesces the
    /// collectors, advances the per-shard seq cuts, snapshots per-host
    /// checkpoints, truncates the replay log, and (if configured or
    /// requested) rebalances shard ownership.
    ///
    /// Like [`DppHandle::flush_partition`](crate::DppHandle::flush_partition),
    /// fleet trainers must keep consuming while this runs. Returns `false`
    /// if a host service tore down before its barrier resolved.
    pub fn flush_partition(&mut self) -> bool {
        for host in 0..self.slots.len() {
            if self.slots[host].live && self.slots[host].reachable != Reach::Up {
                self.declare_dead(host);
            }
        }
        for host in 0..self.slots.len() {
            if self.slots[host].live {
                let flushed = self.slots[host]
                    .runtime
                    .as_mut()
                    .expect("live host has a runtime")
                    .handle
                    .flush_partition();
                if !flushed {
                    return false;
                }
            }
        }
        // Quiesce: every batch the host sinks pushed is either forwarded or
        // deduped before the cut is taken.
        for slot in &self.slots {
            if !slot.live {
                continue;
            }
            let runtime = slot.runtime.as_ref().expect("live host has a runtime");
            loop {
                let delivered = runtime
                    .handle
                    .snapshot()
                    .trainers
                    .first()
                    .map(|lane| lane.delivered_batches)
                    .unwrap_or(0);
                if runtime.collector.processed.load(Ordering::Acquire) >= delivered {
                    break;
                }
                std::thread::sleep(QUIESCE_POLL);
            }
        }
        self.cuts = self
            .shared
            .delivered_through
            .lock()
            .expect("watermark lock")
            .clone();
        for slot in &mut self.slots {
            if let (true, Some(runtime)) = (slot.live, slot.runtime.as_ref()) {
                slot.checkpoint = runtime.handle.checkpoint();
            }
        }
        for files in &mut self.interval_files {
            files.clear();
        }
        self.counters.note_barrier();
        if self.config.rebalance || self.rebalance_requests.swap(false, Ordering::AcqRel) {
            self.rebalance();
        }
        true
    }

    /// Declares `host` dead: clears its queued traffic, re-places each of
    /// its shards on the least-loaded live host, and replays the current
    /// interval's files for those shards. A killed host's runtime is
    /// reaped; a partitioned host keeps running as a zombie whose late
    /// deliveries the watermark dedups.
    fn declare_dead(&mut self, host: usize) {
        self.slots[host].live = false;
        self.slots[host].pending.clear();
        self.counters.note_death();
        self.counters.set_hosts_live(self.live_count());
        if self.slots[host].reachable == Reach::Down {
            self.teardown_runtime(host);
        }
        let owned: Vec<usize> = (0..self.shards)
            .filter(|&s| self.placement[s] == host)
            .collect();
        for shard in owned {
            let target = self
                .least_loaded_live()
                .expect("at least one live host must remain to inherit shards");
            self.place_shard(shard, target, true);
            self.counters.note_replacement();
        }
        self.refresh_owned_gauges();
    }

    /// The live host owning the fewest shards (ties pick the lowest id).
    fn least_loaded_live(&self) -> Option<usize> {
        (0..self.slots.len())
            .filter(|&h| self.slots[h].live)
            .min_by_key(|&h| (self.owned_count(h), h))
    }

    fn owned_count(&self, host: usize) -> usize {
        self.placement
            .iter()
            .filter(|&&owner| owner == host)
            .count()
    }

    fn live_count(&self) -> usize {
        self.slots.iter().filter(|slot| slot.live).count()
    }

    /// Moves shard ownership to `target`, rebasing the target collector's
    /// sequence mapping so its next host-local emission of the shard lands
    /// exactly at the global cut. With `replay` the current interval's files
    /// are re-submitted (death recovery); without it the interval is empty
    /// (barrier-time rebalance) and the rebase alone suffices.
    fn place_shard(&mut self, shard: usize, target: usize, replay: bool) {
        self.placement[shard] = target;
        {
            let collector = &self.slots[target]
                .runtime
                .as_ref()
                .expect("placement target is live")
                .collector;
            let seen = collector.local_seen.lock().expect("local_seen lock")[shard];
            let base = self.cuts[shard]
                .checked_sub(seen)
                .expect("rebase underflow: a host saw more of a shard than the global cut");
            collector.bases.lock().expect("bases lock")[shard] = base;
        }
        if replay {
            let files = self.interval_files[shard].clone();
            for path in files {
                self.counters.note_replayed_file();
                self.slots[target]
                    .runtime
                    .as_mut()
                    .expect("placement target is live")
                    .handle
                    .submit_file_to_shard(path, shard);
            }
        }
    }

    /// Work-stealing rebalance at a (quiesced) barrier: while ownership
    /// counts across live hosts differ by more than one, move the
    /// highest-numbered shard from the most- to the least-loaded host.
    /// Deterministic: ties pick the lowest host id on both sides.
    fn rebalance(&mut self) {
        let clock = Instant::now();
        let mut moves = 0u64;
        loop {
            let live: Vec<usize> = (0..self.slots.len())
                .filter(|&h| self.slots[h].live)
                .collect();
            if live.len() < 2 {
                break;
            }
            let &donor = live
                .iter()
                .max_by_key(|&&h| (self.owned_count(h), std::cmp::Reverse(h)))
                .expect("live set is non-empty");
            let &taker = live
                .iter()
                .min_by_key(|&&h| (self.owned_count(h), h))
                .expect("live set is non-empty");
            if self.owned_count(donor) <= self.owned_count(taker) + 1 {
                break;
            }
            let shard = (0..self.shards)
                .rev()
                .find(|&s| self.placement[s] == donor)
                .expect("donor owns at least one shard");
            self.place_shard(shard, taker, false);
            moves += 1;
        }
        self.counters.note_rebalance(moves, clock.elapsed());
        self.refresh_owned_gauges();
    }

    fn refresh_owned_gauges(&self) {
        for host in 0..self.slots.len() {
            self.counters.set_shards_owned(host, self.owned_count(host));
        }
    }

    /// Stops a host incarnation without waiting for its drain: the collector
    /// is hard-stopped and the service's `finish()` runs on a reaper thread
    /// (joined at fleet finish), because a plain drop would leak the
    /// scaling-controller thread.
    fn teardown_runtime(&mut self, host: usize) {
        if let Some(runtime) = self.slots[host].runtime.take() {
            let HostRuntime { handle, collector } = runtime;
            collector.stop_and_join();
            self.reapers.push(std::thread::spawn(move || {
                let _ = handle.finish();
            }));
        }
    }

    /// Takes the fleet-level per-trainer pull endpoints (lane `t` carries
    /// every shard with `shard % trainers == t`, the shard-pinned rule).
    pub fn take_trainers(&mut self) -> Vec<TrainerHandle> {
        std::mem::take(&mut self.trainers)
    }

    /// The fleet's control-plane counters (also a `recd_fleet_*`
    /// [`Collector`](recd_obs::Collector) — register it on a scrape
    /// registry).
    pub fn counters(&self) -> Arc<FleetCounters> {
        Arc::clone(&self.counters)
    }

    /// A cloneable controller for cross-thread control requests.
    pub fn controller(&self) -> FleetController {
        FleetController {
            rebalance: Arc::clone(&self.rebalance_requests),
        }
    }

    /// Per-host metric registries, labelled `h0..hM-1` — each scrapes that
    /// host's live `recd_dpp_*` families across incarnations. Feed these to
    /// a federation/aggregator with the label as the `host` tag.
    pub fn host_registries(&self) -> Vec<(String, Arc<MetricsRegistry>)> {
        self.slots
            .iter()
            .enumerate()
            .map(|(host, slot)| (format!("h{host}"), Arc::clone(&slot.registry)))
            .collect()
    }

    /// Hosts the coordinator currently believes live.
    pub fn hosts_live(&self) -> usize {
        self.live_count()
    }

    /// Current shard → host placement.
    pub fn placement(&self) -> &[usize] {
        &self.placement
    }

    /// Global shard count.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Gracefully shuts the fleet down: finishes every running incarnation
    /// (collectors drain their host lanes to the end), joins the reapers of
    /// earlier teardowns, and aggregates the accounting. Fleet trainers must
    /// keep consuming (or be dropped) while this runs; their lanes
    /// disconnect when this returns.
    pub fn finish(mut self) -> FleetOutput {
        let mut host_reports = Vec::new();
        let mut errors = Vec::new();
        for host in 0..self.slots.len() {
            if let Some(runtime) = self.slots[host].runtime.take() {
                let HostRuntime { handle, collector } = runtime;
                match handle.finish() {
                    Ok(output) => host_reports.push((host, output.report)),
                    Err(err) => {
                        errors.extend(err.errors.iter().map(|e| format!("host h{host}: {e}")));
                        host_reports.push((host, err.output.report));
                    }
                }
                collector.join_after_drain();
            }
        }
        for reaper in self.reapers.drain(..) {
            let _ = reaper.join();
        }
        let report = FleetReport {
            hosts: self.config.hosts,
            shards: self.shards,
            hosts_live_at_finish: self.live_count(),
            heartbeats: self.counters.heartbeats(),
            deaths_detected: self.counters.deaths_detected(),
            kills: self.counters.kills(),
            partitions: self.counters.partitions(),
            rejoins: self.counters.rejoins(),
            flaps: self.counters.flaps(),
            barriers: self.counters.barriers(),
            shard_replacements: self.counters.shard_replacements(),
            rebalance_moves: self.counters.rebalance_moves(),
            rebalance_ms: self.counters.rebalance_ms(),
            replayed_files: self.counters.replayed_files(),
            duplicate_batches_dropped: self.counters.duplicate_batches_dropped(),
            forwarded_batches: self.counters.forwarded_batches(),
            forwarded_samples: self.counters.forwarded_samples(),
        };
        let dpp = self.aggregate_report(&host_reports);
        FleetOutput {
            report,
            dpp,
            host_reports,
            errors,
        }
    }

    /// Projects the fleet into the single-service report shape:
    /// samples/batches/trainer lanes count unique forwarded work; worker,
    /// queue, pool, and reader fields aggregate over the host incarnations
    /// still running at finish.
    fn aggregate_report(&self, host_reports: &[(usize, DppReport)]) -> DppReport {
        let wall_seconds = self.started.elapsed().as_secs_f64();
        let samples = self.counters.forwarded_samples() as usize;
        let batches = self.counters.forwarded_batches() as usize;
        let mut batch_pool = crate::pool::PoolStats::default();
        let mut converted_pool = crate::pool::PoolStats::default();
        let mut blob_pool = crate::pool::PoolStats::default();
        let mut ctrl: Option<crate::control::CtrlReport> = None;
        let mut reader_metrics = recd_reader::ReaderMetrics::default();
        let mut scale_events = Vec::new();
        let mut egress_bytes = 0usize;
        let mut dedupe_weighted = 0.0f64;
        let mut dedupe_samples = 0usize;
        for (_, report) in host_reports {
            for (total, part) in [
                (&mut batch_pool, &report.batch_pool),
                (&mut converted_pool, &report.converted_pool),
                (&mut blob_pool, &report.blob_pool),
            ] {
                total.hits += part.hits;
                total.misses += part.misses;
                total.recycled += part.recycled;
                total.discarded += part.discarded;
                total.trimmed += part.trimmed;
                total.steals += part.steals;
                total.capacity += part.capacity;
            }
            if let Some(host_ctrl) = &report.ctrl {
                let total = ctrl.get_or_insert_with(Default::default);
                total.ticks += host_ctrl.ticks;
                total.actuations += host_ctrl.actuations;
                total.grows += host_ctrl.grows;
                total.shrinks += host_ctrl.shrinks;
                total.pump_pauses += host_ctrl.pump_pauses;
                total.pump_resumes += host_ctrl.pump_resumes;
            }
            reader_metrics += report.reader_metrics;
            scale_events.extend(report.scale_events.iter().cloned());
            egress_bytes += report.egress_bytes;
            dedupe_weighted += report.dedupe_factor * report.samples as f64;
            dedupe_samples += report.samples;
        }
        let max_of =
            |f: fn(&DppReport) -> usize| host_reports.iter().map(|(_, r)| f(r)).max().unwrap_or(0);
        DppReport {
            fill_workers: self.config.host.fill_workers,
            compute_workers: self.config.host.compute_workers,
            peak_fill_workers: max_of(|r| r.peak_fill_workers),
            peak_compute_workers: max_of(|r| r.peak_compute_workers),
            shards: self.shards,
            policy: "fleet_round_robin".to_string(),
            assign_policy: "shard_pinned".to_string(),
            wall_seconds,
            partitions_ingested: self.partitions_ingested,
            duplicate_ingests: self.duplicate_ingests,
            samples,
            batches,
            samples_per_second: if wall_seconds > 0.0 {
                samples as f64 / wall_seconds
            } else {
                0.0
            },
            egress_bytes,
            dedupe_factor: if dedupe_samples > 0 {
                dedupe_weighted / dedupe_samples as f64
            } else {
                1.0
            },
            peak_input_queue_depth: max_of(|r| r.peak_input_queue_depth),
            peak_filled_queue_depth: max_of(|r| r.peak_filled_queue_depth),
            peak_work_queue_depth: max_of(|r| r.peak_work_queue_depth),
            peak_output_queue_depth: max_of(|r| r.peak_output_queue_depth),
            trainers: self
                .lane_shared
                .iter()
                .zip(&self.lane_gauges)
                .enumerate()
                .map(|(trainer, (shared, gauge))| TrainerLaneReport {
                    trainer,
                    delivered_batches: shared.delivered_batches(),
                    delivered_samples: shared.delivered_samples(),
                    consumed_batches: shared.consumed_batches(),
                    consumed_samples: shared.consumed_samples(),
                    dropped_batches: shared.dropped_batches(),
                    peak_queue_depth: gauge.peak_depth(),
                })
                .collect(),
            scale_events,
            batch_pool,
            converted_pool,
            blob_pool,
            ctrl,
            reader_metrics,
        }
    }
}
