//! Fleet observability: the `recd_fleet_*` collector for placement,
//! heartbeat, replay, and rebalance accounting, plus the per-host snapshot
//! probe whose inner source is swapped when a host rejoins.

use crate::service::SnapshotSource;
use recd_obs::{Collector, MetricsBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Per-host gauges exported under a `host="h<i>"` label.
#[derive(Debug, Default)]
struct HostGauges {
    /// 1 while the host is actually up and reachable, 0 while killed or
    /// partitioned — ground truth, not the coordinator's belief.
    up: AtomicU64,
    /// Coordinator clock time of the host's last heartbeat.
    last_beat_ms: AtomicU64,
    /// Shards the coordinator currently places on this host.
    shards_owned: AtomicU64,
}

/// Control-plane counters and gauges for one fleet, exported as the
/// `recd_fleet_*` metric families. Shared between the coordinator (writer)
/// and the observability plane (reader); also read at finish to build the
/// [`FleetReport`](super::FleetReport).
#[derive(Debug)]
pub struct FleetCounters {
    now_ms: AtomicU64,
    hosts_live: AtomicU64,
    heartbeats: AtomicU64,
    deaths_detected: AtomicU64,
    kills: AtomicU64,
    partitions: AtomicU64,
    rejoins: AtomicU64,
    flaps: AtomicU64,
    barriers: AtomicU64,
    shard_replacements: AtomicU64,
    rebalance_moves: AtomicU64,
    rebalance_nanos: AtomicU64,
    replayed_files: AtomicU64,
    duplicate_batches_dropped: AtomicU64,
    forwarded_batches: AtomicU64,
    forwarded_samples: AtomicU64,
    per_host: Vec<HostGauges>,
}

impl FleetCounters {
    /// Zeroed counters for a fleet of `hosts` hosts (all initially live).
    pub(super) fn new(hosts: usize) -> Self {
        let counters = Self {
            now_ms: AtomicU64::new(0),
            hosts_live: AtomicU64::new(hosts as u64),
            heartbeats: AtomicU64::new(0),
            deaths_detected: AtomicU64::new(0),
            kills: AtomicU64::new(0),
            partitions: AtomicU64::new(0),
            rejoins: AtomicU64::new(0),
            flaps: AtomicU64::new(0),
            barriers: AtomicU64::new(0),
            shard_replacements: AtomicU64::new(0),
            rebalance_moves: AtomicU64::new(0),
            rebalance_nanos: AtomicU64::new(0),
            replayed_files: AtomicU64::new(0),
            duplicate_batches_dropped: AtomicU64::new(0),
            forwarded_batches: AtomicU64::new(0),
            forwarded_samples: AtomicU64::new(0),
            per_host: (0..hosts).map(|_| HostGauges::default()).collect(),
        };
        for gauges in &counters.per_host {
            gauges.up.store(1, Ordering::Relaxed);
        }
        counters
    }

    pub(super) fn set_now(&self, now_ms: u64) {
        self.now_ms.store(now_ms, Ordering::Relaxed);
    }

    pub(super) fn set_hosts_live(&self, live: usize) {
        self.hosts_live.store(live as u64, Ordering::Relaxed);
    }

    pub(super) fn set_host_up(&self, host: usize, up: bool) {
        self.per_host[host].up.store(up as u64, Ordering::Relaxed);
    }

    pub(super) fn set_shards_owned(&self, host: usize, owned: usize) {
        self.per_host[host]
            .shards_owned
            .store(owned as u64, Ordering::Relaxed);
    }

    pub(super) fn note_heartbeat(&self, host: usize, now_ms: u64) {
        self.per_host[host]
            .last_beat_ms
            .store(now_ms, Ordering::Relaxed);
        self.heartbeats.fetch_add(1, Ordering::Relaxed);
    }

    pub(super) fn note_death(&self) {
        self.deaths_detected.fetch_add(1, Ordering::Relaxed);
    }

    pub(super) fn note_kill(&self) {
        self.kills.fetch_add(1, Ordering::Relaxed);
    }

    pub(super) fn note_partition(&self) {
        self.partitions.fetch_add(1, Ordering::Relaxed);
    }

    pub(super) fn note_rejoin(&self) {
        self.rejoins.fetch_add(1, Ordering::Relaxed);
    }

    pub(super) fn note_flap(&self) {
        self.flaps.fetch_add(1, Ordering::Relaxed);
    }

    pub(super) fn note_barrier(&self) {
        self.barriers.fetch_add(1, Ordering::Relaxed);
    }

    pub(super) fn note_replacement(&self) {
        self.shard_replacements.fetch_add(1, Ordering::Relaxed);
    }

    pub(super) fn note_rebalance(&self, moves: u64, elapsed: std::time::Duration) {
        self.rebalance_moves.fetch_add(moves, Ordering::Relaxed);
        self.rebalance_nanos
            .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
    }

    pub(super) fn note_replayed_file(&self) {
        self.replayed_files.fetch_add(1, Ordering::Relaxed);
    }

    pub(super) fn note_duplicate_dropped(&self) {
        self.duplicate_batches_dropped
            .fetch_add(1, Ordering::Relaxed);
    }

    pub(super) fn note_forwarded(&self, samples: u64) {
        self.forwarded_batches.fetch_add(1, Ordering::Relaxed);
        self.forwarded_samples.fetch_add(samples, Ordering::Relaxed);
    }

    /// Hosts the coordinator currently believes live.
    pub fn hosts_live(&self) -> u64 {
        self.hosts_live.load(Ordering::Relaxed)
    }

    /// Heartbeats stamped so far.
    pub fn heartbeats(&self) -> u64 {
        self.heartbeats.load(Ordering::Relaxed)
    }

    /// Hosts declared dead so far.
    pub fn deaths_detected(&self) -> u64 {
        self.deaths_detected.load(Ordering::Relaxed)
    }

    /// `kill-host` faults applied so far.
    pub fn kills(&self) -> u64 {
        self.kills.load(Ordering::Relaxed)
    }

    /// `partition-host` faults applied so far.
    pub fn partitions(&self) -> u64 {
        self.partitions.load(Ordering::Relaxed)
    }

    /// Dead hosts rejoined so far.
    pub fn rejoins(&self) -> u64 {
        self.rejoins.load(Ordering::Relaxed)
    }

    /// Partitions that healed before detection so far.
    pub fn flaps(&self) -> u64 {
        self.flaps.load(Ordering::Relaxed)
    }

    /// Fleet barrier rounds completed so far.
    pub fn barriers(&self) -> u64 {
        self.barriers.load(Ordering::Relaxed)
    }

    /// Shards re-placed off dead hosts so far.
    pub fn shard_replacements(&self) -> u64 {
        self.shard_replacements.load(Ordering::Relaxed)
    }

    /// Shards moved by the work-stealing rebalance so far.
    pub fn rebalance_moves(&self) -> u64 {
        self.rebalance_moves.load(Ordering::Relaxed)
    }

    /// Wall-clock time spent rebalancing so far, in milliseconds.
    pub fn rebalance_ms(&self) -> f64 {
        self.rebalance_nanos.load(Ordering::Relaxed) as f64 / 1e6
    }

    /// Interval files replayed to replacement hosts so far.
    pub fn replayed_files(&self) -> u64 {
        self.replayed_files.load(Ordering::Relaxed)
    }

    /// Duplicate batches dropped by the delivery watermark so far.
    pub fn duplicate_batches_dropped(&self) -> u64 {
        self.duplicate_batches_dropped.load(Ordering::Relaxed)
    }

    /// Unique batches forwarded onto fleet lanes so far.
    pub fn forwarded_batches(&self) -> u64 {
        self.forwarded_batches.load(Ordering::Relaxed)
    }

    /// Unique samples forwarded onto fleet lanes so far.
    pub fn forwarded_samples(&self) -> u64 {
        self.forwarded_samples.load(Ordering::Relaxed)
    }
}

impl Collector for FleetCounters {
    fn collect(&self, out: &mut MetricsBuf) {
        out.gauge(
            "recd_fleet_hosts_total",
            "Configured DPP hosts in the fleet.",
            &[],
            self.per_host.len() as f64,
        );
        out.gauge(
            "recd_fleet_hosts_live",
            "Hosts the coordinator currently believes live.",
            &[],
            self.hosts_live() as f64,
        );
        out.counter(
            "recd_fleet_heartbeats_total",
            "Heartbeats stamped by the coordinator across all hosts.",
            &[],
            self.heartbeats() as f64,
        );
        out.counter(
            "recd_fleet_deaths_detected_total",
            "Hosts declared dead (stale heartbeat or failed barrier round).",
            &[],
            self.deaths_detected() as f64,
        );
        out.counter(
            "recd_fleet_kills_total",
            "kill-host faults applied.",
            &[],
            self.kills() as f64,
        );
        out.counter(
            "recd_fleet_partitions_total",
            "partition-host faults applied.",
            &[],
            self.partitions() as f64,
        );
        out.counter(
            "recd_fleet_rejoins_total",
            "Dead hosts restarted via rejoin-host.",
            &[],
            self.rejoins() as f64,
        );
        out.counter(
            "recd_fleet_flaps_total",
            "Partitions that healed before the heartbeat timeout noticed.",
            &[],
            self.flaps() as f64,
        );
        out.counter(
            "recd_fleet_barriers_total",
            "Fleet-wide flush_partition barrier rounds completed.",
            &[],
            self.barriers() as f64,
        );
        out.counter(
            "recd_fleet_shard_replacements_total",
            "Shards re-placed because their owner died.",
            &[],
            self.shard_replacements() as f64,
        );
        out.counter(
            "recd_fleet_rebalance_moves_total",
            "Shards moved by the work-stealing rebalance.",
            &[],
            self.rebalance_moves() as f64,
        );
        out.counter(
            "recd_fleet_rebalance_seconds_total",
            "Wall-clock time spent inside the rebalance step.",
            &[],
            self.rebalance_nanos.load(Ordering::Relaxed) as f64 / 1e9,
        );
        out.counter(
            "recd_fleet_replayed_files_total",
            "Interval files re-submitted to replacement hosts.",
            &[],
            self.replayed_files() as f64,
        );
        out.counter(
            "recd_fleet_duplicate_batches_dropped_total",
            "Late/replayed duplicate batches dropped by the delivery watermark.",
            &[],
            self.duplicate_batches_dropped() as f64,
        );
        out.counter(
            "recd_fleet_forwarded_batches_total",
            "Unique batches forwarded onto fleet trainer lanes.",
            &[],
            self.forwarded_batches() as f64,
        );
        out.counter(
            "recd_fleet_forwarded_samples_total",
            "Unique samples forwarded onto fleet trainer lanes.",
            &[],
            self.forwarded_samples() as f64,
        );
        let now = self.now_ms.load(Ordering::Relaxed);
        for (host, gauges) in self.per_host.iter().enumerate() {
            let label = format!("h{host}");
            let labels = [("host", label.as_str())];
            out.gauge(
                "recd_fleet_host_up",
                "1 while the host is actually up and reachable (ground truth).",
                &labels,
                gauges.up.load(Ordering::Relaxed) as f64,
            );
            out.gauge(
                "recd_fleet_heartbeat_age_ms",
                "Coordinator-clock age of the host's last heartbeat.",
                &labels,
                now.saturating_sub(gauges.last_beat_ms.load(Ordering::Relaxed)) as f64,
            );
            out.gauge(
                "recd_fleet_shards_owned",
                "Shards currently placed on the host.",
                &labels,
                gauges.shards_owned.load(Ordering::Relaxed) as f64,
            );
        }
    }
}

/// A stable per-host collector whose inner [`SnapshotSource`] is swapped
/// when the host's incarnation changes (rejoin), so the host's registry is
/// registered once and keeps scraping across restarts. While the host is
/// down the probe freezes at the dead incarnation's last values.
#[derive(Default)]
pub(super) struct HostProbe {
    source: Mutex<Option<SnapshotSource>>,
}

impl HostProbe {
    pub(super) fn set(&self, source: SnapshotSource) {
        *self.source.lock().expect("host probe lock") = Some(source);
    }
}

impl Collector for HostProbe {
    fn collect(&self, out: &mut MetricsBuf) {
        let source = self.source.lock().expect("host probe lock").clone();
        if let Some(source) = source {
            source.collect(out);
        }
    }
}
