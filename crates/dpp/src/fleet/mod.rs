//! The disaggregated multi-host DPP fleet: M simulated preprocessing hosts
//! — each a complete, nearly-unchanged [`DppService`](crate::DppService)
//! with its own fill/compute pools, batch pools, and scaler — serving N
//! trainer lanes through a fault-tolerant control plane.
//!
//! ```text
//!                 ┌ host h0: DppService (S shards, 1 lane) ─ collector ┐
//!  coordinator ──▶│ host h1: DppService (S shards, 1 lane) ─ collector │──▶ fleet lanes 0..N
//!  (placement,    │ host h2: ...                                       │    (TrainerHandle)
//!   heartbeats,   └ host hM: ...                                       ┘
//!   replay)
//! ```
//!
//! The coordinator owns the **global** file → shard placement: file `i` of
//! the submission sequence belongs to shard `i % S`, and every file is
//! submitted to exactly the host that currently owns its shard via
//! [`DppHandle::submit_file_to_shard`](crate::DppHandle::submit_file_to_shard).
//! Each host runs the full `S`-shard service with a single shard-pinned
//! lane, so per-shard emission order inside a host is exactly the
//! single-service order; a per-host collector thread rebases host-local
//! per-shard sequence numbers onto the global sequence and forwards onto
//! the fleet's per-trainer lanes (`trainer = shard % N`, the same
//! shard-pinned rule the single service uses).
//!
//! Fault tolerance is built from pieces the single service already has:
//!
//! * **Heartbeats** — [`FleetHandle::tick`] stamps a heartbeat for every
//!   reachable host on the shared coordinator clock; a host whose last beat
//!   is *strictly older* than the timeout is declared dead.
//! * **Bounded replay** — the coordinator logs each shard's files since the
//!   last [`flush_partition`](FleetHandle::flush_partition) barrier. When a
//!   host dies, its shards are re-placed on the least-loaded live host, the
//!   new owner's sequence base is set from the barrier's per-shard seq cut,
//!   and only the current interval's files are replayed.
//! * **Exactly-once delivery** — the fleet's `delivered_through` watermark
//!   dedups the overlap between a zombie host's late deliveries and the
//!   replacement's replayed ones, so the union of trainer batches stays
//!   byte-identical under every failure schedule.
//! * **Rejoin** — a dead host rejoins as a fresh
//!   [`DppService::resume`](crate::DppService::resume) from the
//!   coordinator's last checkpoint for that host, owning no shards until
//!   the next rebalance steals some back.
//! * **Work stealing** — at every barrier (always when
//!   [`FleetConfig::with_rebalance`] is on, or on demand via
//!   [`FleetController::request_rebalance`]) the coordinator moves shards
//!   from the most- to the least-loaded live host until ownership counts
//!   differ by at most one.

mod coordinator;
mod host;
mod obs;

pub use coordinator::{DppFleet, FleetController, FleetHandle};
pub use obs::FleetCounters;

use crate::metrics::DppReport;
use crate::service::DppConfig;
use serde::{Deserialize, Serialize};

/// Configuration of a [`DppFleet`].
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of simulated DPP hosts.
    pub hosts: usize,
    /// Number of fleet-level trainer lanes fed by the collectors.
    pub trainers: usize,
    /// Capacity of each fleet trainer lane.
    pub trainer_queue_depth: usize,
    /// A host whose last heartbeat is strictly older than this is declared
    /// dead by [`FleetHandle::tick`]. A beat exactly at the boundary keeps
    /// the host alive.
    pub heartbeat_timeout_ms: u64,
    /// Run the work-stealing shard rebalance at every barrier (otherwise
    /// only when a [`FleetController`] requested it).
    pub rebalance: bool,
    /// Template for each host's service. `host.shards` is the **global**
    /// shard count `S`; every host is started with all `S` shards and only
    /// the owned subset receives traffic. `trainers`/`assign_policy` are
    /// overridden (one shard-pinned lane per host).
    pub host: DppConfig,
}

impl FleetConfig {
    /// Fleet defaults over a host template: 2 hosts, 1 trainer lane, the
    /// host's trainer queue depth, a 2-minute heartbeat timeout (two
    /// continuous-pipeline pump ticks), rebalance on.
    pub fn new(host: DppConfig) -> Self {
        Self {
            hosts: 2,
            trainers: 1,
            trainer_queue_depth: host.trainer_queue_depth,
            heartbeat_timeout_ms: 120_000,
            rebalance: true,
            host,
        }
    }

    /// Sets the host count (minimum 1).
    #[must_use]
    pub fn with_hosts(mut self, hosts: usize) -> Self {
        self.hosts = hosts.max(1);
        self
    }

    /// Sets the fleet trainer lane count (minimum 1).
    #[must_use]
    pub fn with_trainers(mut self, trainers: usize) -> Self {
        self.trainers = trainers.max(1);
        self
    }

    /// Sets each fleet trainer lane's capacity (minimum 1).
    #[must_use]
    pub fn with_trainer_queue_depth(mut self, depth: usize) -> Self {
        self.trainer_queue_depth = depth.max(1);
        self
    }

    /// Sets the heartbeat timeout (minimum 1 ms).
    #[must_use]
    pub fn with_heartbeat_timeout_ms(mut self, ms: u64) -> Self {
        self.heartbeat_timeout_ms = ms.max(1);
        self
    }

    /// Enables or disables the every-barrier work-stealing rebalance.
    #[must_use]
    pub fn with_rebalance(mut self, rebalance: bool) -> Self {
        self.rebalance = rebalance;
        self
    }
}

/// Control-plane accounting for one fleet run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FleetReport {
    /// Configured host count.
    pub hosts: usize,
    /// Global shard count.
    pub shards: usize,
    /// Hosts the coordinator believed live when the fleet finished.
    pub hosts_live_at_finish: usize,
    /// Heartbeats stamped across all hosts.
    pub heartbeats: u64,
    /// Hosts declared dead (stale heartbeat or failed barrier round).
    pub deaths_detected: u64,
    /// `kill-host` faults applied.
    pub kills: u64,
    /// `partition-host` faults applied.
    pub partitions: u64,
    /// `rejoin-host` faults applied to a dead host.
    pub rejoins: u64,
    /// Partitions that healed before the heartbeat timeout noticed them.
    pub flaps: u64,
    /// Fleet-wide barrier rounds completed.
    pub barriers: u64,
    /// Shards re-placed because their owner died.
    pub shard_replacements: u64,
    /// Shards moved by the work-stealing rebalance.
    pub rebalance_moves: u64,
    /// Wall-clock time spent inside the rebalance step, in milliseconds.
    pub rebalance_ms: f64,
    /// Files re-submitted to a replacement host from the interval log.
    pub replayed_files: u64,
    /// Late/replayed duplicate batches dropped by the delivery watermark.
    pub duplicate_batches_dropped: u64,
    /// Unique batches forwarded onto fleet trainer lanes.
    pub forwarded_batches: u64,
    /// Unique samples forwarded onto fleet trainer lanes.
    pub forwarded_samples: u64,
}

/// Everything a finished fleet run produced.
#[derive(Debug)]
pub struct FleetOutput {
    /// Control-plane accounting.
    pub report: FleetReport,
    /// Fleet-level aggregate in the single-service report shape —
    /// `samples`/`batches`/`trainers` count **unique** forwarded work (host
    /// sums would double-count replays); pool/queue/reader fields aggregate
    /// over host incarnations.
    pub dpp: DppReport,
    /// Final per-host reports, keyed by host id (one entry per incarnation
    /// that was still running at finish).
    pub host_reports: Vec<(usize, DppReport)>,
    /// Errors surfaced by host services, prefixed with the host id.
    pub errors: Vec<String>,
}
