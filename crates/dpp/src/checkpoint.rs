//! Checkpoint state of the streaming DPP service, for exactly-once
//! crash/resume of the continuous feed path.
//!
//! A [`DppCheckpoint`] is only meaningful at a **barrier boundary** — taken
//! right after [`DppHandle::flush_partition`](crate::DppHandle::flush_partition)
//! returns, when every submitted row has been delivered and the shard
//! accumulators are empty. At that point the service's durable state reduces
//! to counter baselines plus the set of already-ingested partition keys:
//!
//! * `files_routed` seeds the router's file → shard rotation so a resumed
//!   [`ShardPolicy::FileRoundRobin`](crate::ShardPolicy::FileRoundRobin) run
//!   continues the rotation exactly where the crashed instance stopped —
//!   batch composition stays a pure function of the cumulative submission
//!   order across the crash.
//! * `ingested` makes replay idempotent: the upstream ETL stage replays its
//!   log tail from *its* checkpoint cursor (at-least-once), and the service
//!   skips any partition it already consumed (dedup), which composes to
//!   exactly-once.
//!
//! The wire format is the same hand-rolled little-endian framing as
//! [`recd_etl::checkpoint`]: magic, version, flat fields, and a
//! trailing-bytes check on decode. Decode failures surface as the shared
//! [`CheckpointError`].

use recd_codec::{ByteReader, ByteWriter};
use recd_etl::CheckpointError;

/// Magic prefix of a serialized DPP checkpoint (`"RDCK"`, little-endian) —
/// distinct from the ETL checkpoint magic so the two blob kinds cannot be
/// confused.
const MAGIC: u32 = u32::from_le_bytes(*b"RDCK");
/// Current wire-format version.
const VERSION: u16 = 1;

/// Serializable state of a [`DppHandle`](crate::DppHandle) at a barrier
/// boundary. Produced by
/// [`DppHandle::checkpoint`](crate::DppHandle::checkpoint); consumed by
/// [`DppService::resume`](crate::DppService::resume).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DppCheckpoint {
    /// Files submitted (and, at a barrier, fully routed) so far; seeds the
    /// resumed router's file round-robin rotation.
    pub files_routed: u64,
    /// Partitions ingested through the continuous feed path so far.
    pub partitions_ingested: u64,
    /// Replayed partitions skipped by dedup so far.
    pub duplicate_ingests: u64,
    /// Barrier ids issued so far; the resumed handle continues the monotonic
    /// sequence.
    pub next_barrier_id: u64,
    /// Blob-store prefixes of every partition already ingested, sorted — the
    /// dedup set that makes at-least-once replay exactly-once.
    pub ingested: Vec<String>,
}

impl DppCheckpoint {
    /// Serializes to the flat little-endian wire format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_u32(MAGIC);
        w.put_u64(VERSION as u64);
        w.put_u64(self.files_routed);
        w.put_u64(self.partitions_ingested);
        w.put_u64(self.duplicate_ingests);
        w.put_u64(self.next_barrier_id);
        w.put_usize(self.ingested.len());
        for key in &self.ingested {
            w.put_str(key);
        }
        w.into_bytes()
    }

    /// Decodes a blob produced by [`to_bytes`](Self::to_bytes).
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError`] on a wrong magic, an unsupported version,
    /// a malformed field, or trailing bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CheckpointError> {
        let mut r = ByteReader::new(bytes);
        let magic = r.get_u32()?;
        if magic != MAGIC {
            return Err(CheckpointError::BadMagic { found: magic });
        }
        let version = r.get_u64()? as u16;
        if version != VERSION {
            return Err(CheckpointError::UnsupportedVersion { found: version });
        }
        let files_routed = r.get_u64()?;
        let partitions_ingested = r.get_u64()?;
        let duplicate_ingests = r.get_u64()?;
        let next_barrier_id = r.get_u64()?;
        let count = r.get_usize()?;
        let mut ingested = Vec::with_capacity(count.min(1 << 16));
        for _ in 0..count {
            ingested.push(r.get_str()?);
        }
        if !r.is_exhausted() {
            return Err(CheckpointError::TrailingBytes {
                remaining: r.remaining(),
            });
        }
        Ok(Self {
            files_routed,
            partitions_ingested,
            duplicate_ingests,
            next_barrier_id,
            ingested,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture() -> DppCheckpoint {
        DppCheckpoint {
            files_routed: 42,
            partitions_ingested: 7,
            duplicate_ingests: 2,
            next_barrier_id: 9,
            ingested: vec![
                "events/hour=11/".to_string(),
                "events/hour=12/".to_string(),
                "events/hour=13/".to_string(),
            ],
        }
    }

    #[test]
    fn round_trips_byte_exactly() {
        let checkpoint = fixture();
        let bytes = checkpoint.to_bytes();
        let back = DppCheckpoint::from_bytes(&bytes).expect("decode");
        assert_eq!(back, checkpoint);
        assert_eq!(back.to_bytes(), bytes);
    }

    #[test]
    fn empty_checkpoint_round_trips() {
        let checkpoint = DppCheckpoint::default();
        let back = DppCheckpoint::from_bytes(&checkpoint.to_bytes()).expect("decode");
        assert_eq!(back, checkpoint);
    }

    #[test]
    fn bad_magic_version_and_truncation_fail_loudly() {
        let good = fixture().to_bytes();

        let mut bad_magic = good.clone();
        bad_magic[0] ^= 0xFF;
        assert!(matches!(
            DppCheckpoint::from_bytes(&bad_magic),
            Err(CheckpointError::BadMagic { .. })
        ));

        let mut bad_version = good.clone();
        bad_version[4] = 0xFF;
        assert!(matches!(
            DppCheckpoint::from_bytes(&bad_version),
            Err(CheckpointError::UnsupportedVersion { .. })
        ));

        assert!(DppCheckpoint::from_bytes(&good[..good.len() - 1]).is_err());

        let mut trailing = good;
        trailing.push(0);
        assert!(matches!(
            DppCheckpoint::from_bytes(&trailing),
            Err(CheckpointError::TrailingBytes { remaining: 1 })
        ));
    }
}
