//! # recd-dpp
//!
//! The streaming Data PreProcessing tier: a long-running, multi-worker
//! service that feeds deduplicated IKJT batches to trainers, modeled on the
//! paper's production DPP setting (RecD runs *continuously* under heavy
//! load, not as a one-shot job).
//!
//! Where [`recd_reader::ReaderTier`] is a batch runner — hand it a stored
//! partition, get every batch back — this crate decomposes the same
//! fill → convert (O3) → preprocess (O4) phases into **pipeline stages
//! connected by bounded channels**:
//!
//! * a pool of *fill workers* decodes DWRF files concurrently,
//! * a deterministic *router* restores submission order, shards rows (by
//!   session id under [`ShardPolicy::SessionAffine`], preserving the O1
//!   session-affinity property so in-batch dedup factors survive
//!   streaming), and coalesces each shard into training batches,
//! * a pool of *compute workers* runs the shared
//!   [`recd_reader::PhaseEngine`] over coalesced batches,
//! * a *sink* resequences the output so results are deterministic for any
//!   worker count.
//!
//! Every queue is bounded, so a slow stage backpressures all the way to the
//! producer: [`DppHandle::submit_file`] blocks instead of buffering without
//! limit. [`DppHandle::snapshot`] exposes live throughput, progress, and
//! queue-depth metrics; [`DppHandle::finish`] drains and joins everything
//! for a graceful shutdown.
//!
//! Under [`ShardPolicy::FileRoundRobin`] with `shards == readers`, the
//! service's concatenated output is **identical** to the one-shot
//! [`recd_reader::ReaderTier`] over the same files — the integration tests
//! assert this sample for sample.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
pub mod metrics;
pub mod pool;
pub mod service;

pub use channel::{bounded, Receiver, SendError, Sender};
pub use metrics::{DppReport, DppSnapshot, ServiceCounters};
pub use pool::{BatchPool, PoolStats, Reclaim};
pub use service::{
    DppConfig, DppError, DppHandle, DppOutput, DppService, ShardPolicy, SnapshotSource,
};
