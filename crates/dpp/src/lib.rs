//! # recd-dpp
//!
//! The streaming Data PreProcessing tier: a long-running, multi-worker
//! service that feeds deduplicated IKJT batches to trainers, modeled on the
//! paper's production DPP setting (RecD runs *continuously* under heavy
//! load, not as a one-shot job).
//!
//! Where [`recd_reader::ReaderTier`] is a batch runner — hand it a stored
//! partition, get every batch back — this crate decomposes the same
//! fill → convert (O3) → preprocess (O4) phases into **pipeline stages
//! connected by bounded channels**:
//!
//! * a pool of *fill workers* decodes DWRF files concurrently,
//! * a deterministic *router* restores submission order, shards rows (by
//!   session id under [`ShardPolicy::SessionAffine`], preserving the O1
//!   session-affinity property so in-batch dedup factors survive
//!   streaming), and coalesces each shard into training batches,
//! * a pool of *compute workers* runs the shared
//!   [`recd_reader::PhaseEngine`] over coalesced batches,
//! * a *sink* resequences the output so results are deterministic for any
//!   worker count.
//!
//! Every queue is bounded, so a slow stage backpressures all the way to the
//! producer: [`DppHandle::submit_file`] blocks instead of buffering without
//! limit. [`DppHandle::snapshot`] exposes live throughput, progress, and
//! queue-depth metrics; [`DppHandle::finish`] drains and joins everything
//! for a graceful shutdown.
//!
//! On top of that pipeline this crate provides the two elastic pieces of
//! the paper's deployment story:
//!
//! * **Multi-trainer fan-out** ([`DppConfig::with_trainers`]): the sink
//!   becomes a dispatch stage that resequences batches per shard and streams
//!   them onto N bounded per-trainer lanes under a
//!   [`TrainerAssignPolicy`]. Each [`TrainerHandle`] is an independent pull
//!   endpoint with its own backpressure gauge and consumption counters, so
//!   one slow trainer throttles its lane — not the whole service — until
//!   the bounded spillover is exhausted. [`DppHandle::flush_partition`]
//!   injects a barrier that guarantees partition boundaries are fully
//!   delivered before it returns.
//! * **Dynamic worker scaling** ([`DppConfig::with_scaling`]): a controller
//!   thread samples queue-depth gauges on a [`ScaleClock`] and grows or
//!   shrinks the fill and compute pools between configured bounds, recording
//!   every resize as a [`ScaleEvent`]. Batch pools shrink along with the
//!   worker population. Because routing is single-threaded and
//!   order-restored, scaling never changes the emitted batches.
//!
//! Under [`ShardPolicy::FileRoundRobin`] with `shards == readers`, the
//! service's concatenated output is **identical** to the one-shot
//! [`recd_reader::ReaderTier`] over the same files — the integration tests
//! assert this sample for sample, and the fan-out tests assert the
//! multiset union across trainer lanes matches the single-sink baseline for
//! every assignment policy.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
pub mod checkpoint;
pub mod control;
pub mod fleet;
pub mod metrics;
pub mod obs;
pub mod pool;
pub mod scaler;
pub mod service;
pub mod sink;

pub use channel::{bounded, Receiver, RecvTimeout, SendError, Sender};
pub use checkpoint::DppCheckpoint;
pub use control::{CtrlConfig, CtrlReport, CtrlShared, PumpGate};
pub use fleet::{
    DppFleet, FleetConfig, FleetController, FleetCounters, FleetHandle, FleetOutput, FleetReport,
};
pub use metrics::{
    DppReport, DppSnapshot, ServiceCounters, TrainerLaneReport, TrainerLaneSnapshot,
};
pub use pool::{BatchPool, PoolStats, Reclaim};
pub use scaler::{ManualClock, ScaleClock, ScaleEvent, ScalerConfig, WallClock};
pub use service::{
    DppConfig, DppError, DppHandle, DppOutput, DppService, ShardPolicy, SnapshotSource,
};
pub use sink::{TrainerAssignPolicy, TrainerBatch, TrainerHandle};
