//! # recd-storage
//!
//! The storage substrate of the RecD reproduction: a columnar, stripe-based
//! file format standing in for DWRF/ORC, and a blob-store simulation standing
//! in for the Tectonic distributed filesystem (paper §2.1).
//!
//! Hive table partitions are stored as files; each file is composed of
//! *stripes* covering a small run of rows; within a stripe every feature is
//! flattened into its own column stream, encoded (delta/varint/dictionary),
//! and the whole stripe is block-compressed.
//!
//! This structure is what makes RecD's clustering optimization (O2) pay off:
//! when a session's rows are adjacent, each stripe contains many copies of
//! the same feature values and the block compressor collapses them, shrinking
//! both the stored bytes and the bytes readers must fetch and decompress.
//!
//! * [`stripe`] — stripe encoding/decoding with [`StripeStats`] accounting.
//! * [`file`] — the file writer/reader ([`DwrfWriter`], [`DwrfFile`]).
//! * [`tectonic`] — the [`TectonicSim`] blob store with per-node byte and
//!   IOPS accounting, an optional per-node request-queue model
//!   ([`NodeConfig`]), and an optional LRU blob cache tier.
//! * [`table`] — landing a whole table partition as files
//!   ([`TableStore`], [`StorageReport`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod file;
pub mod stripe;
pub mod table;
pub mod tectonic;

pub use error::StorageError;
pub use file::{DwrfFile, DwrfWriter, FileReadScratch};
pub use stripe::{
    decode_stripe, decode_stripe_columnar, decode_stripe_columnar_into, encode_stripe,
    DecodeScratch, StripeStats,
};
pub use table::{PreparedPartition, StorageReport, StoredPartition, TableStore};
pub use tectonic::{BlobStats, CacheStats, NodeConfig, NodeStats, PlacementPolicy, TectonicSim};

/// A convenient result alias for fallible operations in this crate.
pub type Result<T> = std::result::Result<T, StorageError>;
