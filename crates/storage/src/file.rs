//! The DWRF-like file: a sequence of compressed stripes plus a footer.

use crate::stripe::{
    decode_stripe, decode_stripe_columnar, decode_stripe_columnar_into, encode_stripe,
    DecodeScratch, StripeStats,
};
use crate::{Result, StorageError};
use recd_codec::{varint, Hasher64};
use recd_data::{ColumnarBatch, Sample, Schema};
use serde::{Deserialize, Serialize};

/// Fingerprints a schema so a file records which schema wrote it.
fn schema_fingerprint(schema: &Schema) -> u64 {
    let mut h = Hasher64::new();
    h.write_u64(schema.dense_count() as u64);
    h.write_u64(schema.sparse_count() as u64);
    for spec in schema.sparse_features() {
        h.write_bytes(spec.name.as_bytes());
    }
    h.finish()
}

/// Metadata about one stripe within a file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StripeFooter {
    /// Byte offset of the stripe within the file body.
    pub offset: usize,
    /// Compressed length of the stripe in bytes.
    pub length: usize,
    /// Number of rows in the stripe.
    pub rows: usize,
}

/// Reusable scratch for [`DwrfFile::read_all_columnar_into`]: the per-stripe
/// staging batch plus the stripe decoder's own scratch, both reused across
/// stripes and files, and a blob buffer for
/// [`TectonicSim::get_into`](crate::TectonicSim::get_into) so the fetched
/// bytes recycle one allocation too. A fill worker holds one for its whole
/// lifetime.
#[derive(Debug, Default)]
pub struct FileReadScratch {
    stripe: ColumnarBatch,
    decode: DecodeScratch,
    blob: Vec<u8>,
}

impl FileReadScratch {
    /// The recycled blob buffer, for fetching into via
    /// [`TectonicSim::get_into`](crate::TectonicSim::get_into).
    pub fn blob_buf(&mut self) -> &mut Vec<u8> {
        &mut self.blob
    }

    /// The bytes of the most recent fetch into [`blob_buf`](Self::blob_buf).
    pub fn blob(&self) -> &[u8] {
        &self.blob
    }

    /// Detaches the blob buffer, leaving an empty one behind. Lets a pool
    /// own the allocation across worker lifetimes: a retiring fill worker
    /// takes the buffer out of its scratch and recycles it, and a respawned
    /// worker installs a pooled one instead of growing a cold `Vec` again.
    pub fn take_blob(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.blob)
    }

    /// Installs a (typically pooled) blob buffer, returning the previous
    /// one.
    pub fn install_blob(&mut self, blob: Vec<u8>) -> Vec<u8> {
        std::mem::replace(&mut self.blob, blob)
    }
}

/// An in-memory DWRF-like file: stripes plus footer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DwrfFile {
    body: Vec<u8>,
    stripes: Vec<StripeFooter>,
    schema_fingerprint: u64,
}

impl DwrfFile {
    /// Number of stripes in the file.
    pub fn stripe_count(&self) -> usize {
        self.stripes.len()
    }

    /// Total number of rows across all stripes.
    pub fn row_count(&self) -> usize {
        self.stripes.iter().map(|s| s.rows).sum()
    }

    /// Stored (compressed) size of the file in bytes, footer included.
    pub fn stored_bytes(&self) -> usize {
        self.body.len() + self.stripes.len() * 24 + 16
    }

    /// Stripe footers.
    pub fn stripe_footers(&self) -> &[StripeFooter] {
        &self.stripes
    }

    /// Decodes one stripe.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::StripeOutOfRange`] for a bad index,
    /// [`StorageError::SchemaMismatch`] if `schema` differs from the writer's
    /// schema, or a decode error for corrupt data.
    pub fn read_stripe(&self, schema: &Schema, index: usize) -> Result<Vec<Sample>> {
        self.check_schema(schema)?;
        let footer = self
            .stripes
            .get(index)
            .ok_or(StorageError::StripeOutOfRange {
                index,
                stripes: self.stripes.len(),
            })?;
        decode_stripe(
            schema,
            &self.body[footer.offset..footer.offset + footer.length],
        )
    }

    /// Decodes one stripe into a [`ColumnarBatch`] (the flat fill path).
    ///
    /// # Errors
    ///
    /// Same error conditions as [`DwrfFile::read_stripe`].
    pub fn read_stripe_columnar(&self, schema: &Schema, index: usize) -> Result<ColumnarBatch> {
        self.check_schema(schema)?;
        let footer = self
            .stripes
            .get(index)
            .ok_or(StorageError::StripeOutOfRange {
                index,
                stripes: self.stripes.len(),
            })?;
        decode_stripe_columnar(
            schema,
            &self.body[footer.offset..footer.offset + footer.length],
        )
    }

    /// Decodes every stripe, returning all rows in file order.
    ///
    /// # Errors
    ///
    /// Same error conditions as [`DwrfFile::read_stripe`].
    pub fn read_all(&self, schema: &Schema) -> Result<Vec<Sample>> {
        Ok(self.read_all_columnar(schema)?.into_samples())
    }

    /// Decodes every stripe into one concatenated [`ColumnarBatch`], in file
    /// order, without materializing any row-wise samples.
    ///
    /// # Errors
    ///
    /// Same error conditions as [`DwrfFile::read_stripe`].
    pub fn read_all_columnar(&self, schema: &Schema) -> Result<ColumnarBatch> {
        let mut out = ColumnarBatch::with_capacity(
            schema.dense_count(),
            schema.sparse_count(),
            self.row_count(),
        );
        self.read_all_columnar_into(schema, &mut FileReadScratch::default(), &mut out)?;
        Ok(out)
    }

    /// Decodes every stripe into a caller-provided (typically recycled)
    /// batch, clearing it first — the buffer-reusing variant of
    /// [`DwrfFile::read_all_columnar`]. With a long-lived
    /// [`FileReadScratch`] and a pooled output batch, a steady-state file
    /// read performs no heap allocation beyond buffer growth. On error the
    /// batch contents are unspecified.
    ///
    /// # Errors
    ///
    /// Same error conditions as [`DwrfFile::read_stripe`].
    pub fn read_all_columnar_into(
        &self,
        schema: &Schema,
        scratch: &mut FileReadScratch,
        out: &mut ColumnarBatch,
    ) -> Result<()> {
        self.check_schema(schema)?;
        out.reset(schema.dense_count(), schema.sparse_count());
        for footer in &self.stripes {
            decode_stripe_columnar_into(
                schema,
                &self.body[footer.offset..footer.offset + footer.length],
                &mut scratch.decode,
                &mut scratch.stripe,
            )?;
            out.append(&scratch.stripe)
                .map_err(|err| StorageError::Corrupt {
                    reason: err.to_string(),
                })?;
        }
        Ok(())
    }

    fn check_schema(&self, schema: &Schema) -> Result<()> {
        let actual = schema_fingerprint(schema);
        if actual != self.schema_fingerprint {
            return Err(StorageError::SchemaMismatch {
                expected: self.schema_fingerprint,
                actual,
            });
        }
        Ok(())
    }

    /// Serializes the file (body + footer) into one blob for the blob store.
    pub fn to_blob(&self) -> Vec<u8> {
        let mut blob = Vec::with_capacity(self.stored_bytes());
        varint::encode_u64(self.schema_fingerprint, &mut blob);
        varint::encode_u64(self.stripes.len() as u64, &mut blob);
        for s in &self.stripes {
            varint::encode_u64(s.offset as u64, &mut blob);
            varint::encode_u64(s.length as u64, &mut blob);
            varint::encode_u64(s.rows as u64, &mut blob);
        }
        varint::encode_u64(self.body.len() as u64, &mut blob);
        blob.extend_from_slice(&self.body);
        blob
    }

    /// Deserializes a blob produced by [`DwrfFile::to_blob`].
    ///
    /// # Errors
    ///
    /// Returns a [`StorageError`] if the blob is truncated or inconsistent.
    pub fn from_blob(blob: &[u8]) -> Result<Self> {
        let mut cursor = 0usize;
        let (fingerprint, used) = varint::decode_u64(&blob[cursor..])?;
        cursor += used;
        let (stripe_count, used) = varint::decode_u64(&blob[cursor..])?;
        cursor += used;
        let mut stripes = Vec::with_capacity(stripe_count as usize);
        for _ in 0..stripe_count {
            let (offset, used) = varint::decode_u64(&blob[cursor..])?;
            cursor += used;
            let (length, used) = varint::decode_u64(&blob[cursor..])?;
            cursor += used;
            let (rows, used) = varint::decode_u64(&blob[cursor..])?;
            cursor += used;
            stripes.push(StripeFooter {
                offset: offset as usize,
                length: length as usize,
                rows: rows as usize,
            });
        }
        let (body_len, used) = varint::decode_u64(&blob[cursor..])?;
        cursor += used;
        let body_len = body_len as usize;
        if cursor + body_len > blob.len() {
            return Err(StorageError::Corrupt {
                reason: "file body truncated".to_string(),
            });
        }
        let body = blob[cursor..cursor + body_len].to_vec();
        for s in &stripes {
            if s.offset + s.length > body.len() {
                return Err(StorageError::Corrupt {
                    reason: "stripe footer points past the file body".to_string(),
                });
            }
        }
        Ok(Self {
            body,
            stripes,
            schema_fingerprint: fingerprint,
        })
    }
}

/// Writes samples into a [`DwrfFile`], one stripe per `rows_per_stripe` rows.
#[derive(Debug)]
pub struct DwrfWriter<'a> {
    schema: &'a Schema,
    rows_per_stripe: usize,
    body: Vec<u8>,
    stripes: Vec<StripeFooter>,
    stats: Vec<StripeStats>,
}

impl<'a> DwrfWriter<'a> {
    /// Creates a writer.
    ///
    /// # Panics
    ///
    /// Panics if `rows_per_stripe` is zero.
    pub fn new(schema: &'a Schema, rows_per_stripe: usize) -> Self {
        assert!(rows_per_stripe > 0, "rows_per_stripe must be positive");
        Self {
            schema,
            rows_per_stripe,
            body: Vec::new(),
            stripes: Vec::new(),
            stats: Vec::new(),
        }
    }

    /// Appends samples, cutting a stripe every `rows_per_stripe` rows.
    pub fn write(&mut self, samples: &[Sample]) {
        for chunk in samples.chunks(self.rows_per_stripe) {
            let (block, stats) = encode_stripe(self.schema, chunk);
            let offset = self.body.len();
            self.body.extend_from_slice(&block);
            self.stripes.push(StripeFooter {
                offset,
                length: block.len(),
                rows: chunk.len(),
            });
            self.stats.push(stats);
        }
    }

    /// Per-stripe statistics collected so far.
    pub fn stripe_stats(&self) -> &[StripeStats] {
        &self.stats
    }

    /// Finalizes the file.
    pub fn finish(self) -> (DwrfFile, Vec<StripeStats>) {
        (
            DwrfFile {
                body: self.body,
                stripes: self.stripes,
                schema_fingerprint: schema_fingerprint(self.schema),
            },
            self.stats,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recd_data::FeatureClass;
    use recd_datagen::{DatasetGenerator, WorkloadConfig, WorkloadPreset};

    fn partition() -> (Schema, Vec<Sample>) {
        let gen = DatasetGenerator::new(WorkloadConfig::preset(WorkloadPreset::Tiny));
        let p = gen.generate_partition();
        (p.schema, p.samples)
    }

    #[test]
    fn write_read_round_trip() {
        let (schema, samples) = partition();
        let mut writer = DwrfWriter::new(&schema, 32);
        writer.write(&samples);
        let (file, stats) = writer.finish();
        assert_eq!(file.row_count(), samples.len());
        assert_eq!(file.stripe_count(), samples.len().div_ceil(32));
        assert_eq!(stats.len(), file.stripe_count());
        assert_eq!(file.read_all(&schema).unwrap(), samples);
        assert_eq!(file.read_stripe(&schema, 0).unwrap(), samples[..32]);
        // The columnar read path sees the same rows without per-row allocs.
        let columnar = file.read_all_columnar(&schema).unwrap();
        assert_eq!(columnar.len(), samples.len());
        assert_eq!(columnar.to_samples(), samples);
        assert_eq!(
            file.read_stripe_columnar(&schema, 1).unwrap().to_samples(),
            samples[32..64.min(samples.len())]
        );
        assert!(matches!(
            file.read_stripe_columnar(&schema, 999),
            Err(StorageError::StripeOutOfRange { .. })
        ));
        assert!(matches!(
            file.read_stripe(&schema, 999),
            Err(StorageError::StripeOutOfRange { .. })
        ));
    }

    #[test]
    fn blob_round_trip_and_truncation_errors() {
        let (schema, samples) = partition();
        let mut writer = DwrfWriter::new(&schema, 16);
        writer.write(&samples[..48]);
        let (file, _) = writer.finish();
        let blob = file.to_blob();
        let back = DwrfFile::from_blob(&blob).unwrap();
        assert_eq!(back, file);
        assert_eq!(back.read_all(&schema).unwrap(), &samples[..48]);
        assert!(DwrfFile::from_blob(&blob[..blob.len() / 2]).is_err());
        assert!(DwrfFile::from_blob(&[]).is_err());
    }

    #[test]
    fn schema_mismatch_is_detected() {
        let (schema, samples) = partition();
        let mut writer = DwrfWriter::new(&schema, 16);
        writer.write(&samples[..16]);
        let (file, _) = writer.finish();
        let other = Schema::builder()
            .sparse("other", FeatureClass::User, 1.0, 0.5, 100)
            .build()
            .unwrap();
        assert!(matches!(
            file.read_all(&other),
            Err(StorageError::SchemaMismatch { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "rows_per_stripe must be positive")]
    fn zero_rows_per_stripe_panics() {
        let (schema, _) = partition();
        DwrfWriter::new(&schema, 0);
    }
}
