//! Landing table partitions into the blob store as DWRF-like files.

use crate::file::{DwrfFile, DwrfWriter};
use crate::stripe::StripeStats;
use crate::tectonic::TectonicSim;
use crate::Result;
use recd_data::{Sample, Schema};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Storage accounting for one landed partition.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct StorageReport {
    /// Number of files written.
    pub files: usize,
    /// Number of stripes written.
    pub stripes: usize,
    /// Rows written.
    pub rows: usize,
    /// Logical payload bytes of the rows.
    pub raw_bytes: usize,
    /// Bytes after columnar encoding (before block compression).
    pub encoded_bytes: usize,
    /// Bytes actually stored (after compression, including footers).
    pub stored_bytes: usize,
}

impl StorageReport {
    /// Accumulates another report into this one (multi-partition runs).
    pub fn absorb(&mut self, other: &StorageReport) {
        self.files += other.files;
        self.stripes += other.stripes;
        self.rows += other.rows;
        self.raw_bytes += other.raw_bytes;
        self.encoded_bytes += other.encoded_bytes;
        self.stored_bytes += other.stored_bytes;
    }

    /// Compression ratio: logical payload bytes over stored bytes.
    pub fn compression_ratio(&self) -> f64 {
        if self.stored_bytes == 0 {
            1.0
        } else {
            self.raw_bytes as f64 / self.stored_bytes as f64
        }
    }
}

/// Handle to a partition that has been landed into the blob store.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoredPartition {
    /// The table this partition belongs to.
    pub table: String,
    /// The partition key (hour bucket).
    pub hour: u64,
    /// Blob paths of the partition's files, in row order.
    pub files: Vec<String>,
}

impl StoredPartition {
    /// Blob-store path prefix of this partition.
    pub fn prefix(table: &str, hour: u64) -> String {
        format!("{table}/hour={hour}/")
    }
}

/// A partition serialized into blobs but not yet stored: the output of
/// [`TableStore::prepare_partition`]. Blobs are shared, so storing (or
/// retrying) never copies the encoded bytes again.
#[derive(Debug, Clone)]
pub struct PreparedPartition {
    stored: StoredPartition,
    report: StorageReport,
    blobs: Vec<Arc<Vec<u8>>>,
}

impl PreparedPartition {
    /// The partition handle the stores will return.
    pub fn stored(&self) -> &StoredPartition {
        &self.stored
    }

    /// Storage accounting for the encoded files.
    pub fn report(&self) -> &StorageReport {
        &self.report
    }
}

/// Writes and reads table partitions.
#[derive(Debug, Clone)]
pub struct TableStore {
    store: TectonicSim,
    rows_per_stripe: usize,
    stripes_per_file: usize,
}

impl TableStore {
    /// Creates a table store over the given blob store. `rows_per_stripe`
    /// and `stripes_per_file` control file geometry.
    ///
    /// # Panics
    ///
    /// Panics if either geometry parameter is zero.
    pub fn new(store: TectonicSim, rows_per_stripe: usize, stripes_per_file: usize) -> Self {
        assert!(rows_per_stripe > 0 && stripes_per_file > 0);
        Self {
            store,
            rows_per_stripe,
            stripes_per_file,
        }
    }

    /// Borrows the underlying blob store.
    pub fn blob_store(&self) -> &TectonicSim {
        &self.store
    }

    /// Serializes one partition into blobs without storing anything: rows
    /// are cut into files of `rows_per_stripe * stripes_per_file` rows each
    /// and encoded once. The result can be stored (and re-stored on retry)
    /// without re-encoding or re-allocating — the chaos retry path prepares
    /// once and retries only the puts.
    pub fn prepare_partition(
        &self,
        schema: &Schema,
        table: &str,
        hour: u64,
        samples: &[Sample],
    ) -> PreparedPartition {
        let rows_per_file = self.rows_per_stripe * self.stripes_per_file;
        let mut report = StorageReport::default();
        let mut files = Vec::new();
        let mut blobs = Vec::new();

        for (file_idx, chunk) in samples.chunks(rows_per_file.max(1)).enumerate() {
            let mut writer = DwrfWriter::new(schema, self.rows_per_stripe);
            writer.write(chunk);
            let (file, stats) = writer.finish();
            accumulate(&mut report, &file, &stats);
            let path = format!(
                "{}file-{file_idx:05}.dwrf",
                StoredPartition::prefix(table, hour)
            );
            blobs.push(Arc::new(file.to_blob()));
            files.push(path);
        }

        PreparedPartition {
            stored: StoredPartition {
                table: table.to_string(),
                hour,
                files,
            },
            report,
            blobs,
        }
    }

    /// Stores a prepared partition through the infallible put path.
    pub fn store_prepared(&self, prepared: &PreparedPartition) -> (StoredPartition, StorageReport) {
        for (path, blob) in prepared.stored.files.iter().zip(&prepared.blobs) {
            self.store.put_blob(path, Arc::clone(blob));
        }
        (prepared.stored.clone(), prepared.report.clone())
    }

    /// Stores a prepared partition through the fallible put path: each file
    /// goes through [`TectonicSim::try_put_blob`], so armed transient put
    /// faults surface as errors — and a retry re-attempts the puts without
    /// copying a single blob byte. Landing is idempotent — files are
    /// content-deterministic and keyed by path — so already-written files
    /// are overwritten with identical bytes.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::Injected`](crate::StorageError::Injected) when
    /// a transient put fault fires mid-landing.
    pub fn try_store_prepared(
        &self,
        prepared: &PreparedPartition,
    ) -> Result<(StoredPartition, StorageReport)> {
        for (path, blob) in prepared.stored.files.iter().zip(&prepared.blobs) {
            self.store.try_put_blob(path, blob)?;
        }
        Ok((prepared.stored.clone(), prepared.report.clone()))
    }

    /// Lands one partition: rows are cut into files of
    /// `rows_per_stripe * stripes_per_file` rows each, written in order.
    pub fn land_partition(
        &self,
        schema: &Schema,
        table: &str,
        hour: u64,
        samples: &[Sample],
    ) -> (StoredPartition, StorageReport) {
        let prepared = self.prepare_partition(schema, table, hour, samples);
        self.store_prepared(&prepared)
    }

    /// Fallible variant of [`land_partition`](Self::land_partition) for
    /// chaos-aware callers. Retry loops should prefer
    /// [`prepare_partition`](Self::prepare_partition) +
    /// [`try_store_prepared`](Self::try_store_prepared) so attempts after the
    /// first don't re-encode the partition.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::Injected`](crate::StorageError::Injected) when
    /// a transient put fault fires mid-landing.
    pub fn try_land_partition(
        &self,
        schema: &Schema,
        table: &str,
        hour: u64,
        samples: &[Sample],
    ) -> Result<(StoredPartition, StorageReport)> {
        let prepared = self.prepare_partition(schema, table, hour, samples);
        self.try_store_prepared(&prepared)
    }

    /// Reads every row of a stored partition back, in file/stripe order.
    ///
    /// # Errors
    ///
    /// Returns a [`StorageError`](crate::StorageError) if a blob is missing
    /// or corrupt.
    pub fn read_partition(
        &self,
        schema: &Schema,
        partition: &StoredPartition,
    ) -> Result<Vec<Sample>> {
        let mut out = Vec::new();
        for path in &partition.files {
            let blob = self.store.get(path)?;
            let file = DwrfFile::from_blob(&blob)?;
            out.extend(file.read_all(schema)?);
        }
        Ok(out)
    }
}

fn accumulate(report: &mut StorageReport, file: &DwrfFile, stats: &[StripeStats]) {
    report.files += 1;
    report.stripes += stats.len();
    report.rows += stats.iter().map(|s| s.rows).sum::<usize>();
    report.raw_bytes += stats.iter().map(|s| s.raw_bytes).sum::<usize>();
    report.encoded_bytes += stats.iter().map(|s| s.encoded_bytes).sum::<usize>();
    report.stored_bytes += file.stored_bytes();
}

#[cfg(test)]
mod tests {
    use super::*;
    use recd_datagen::{DatasetGenerator, WorkloadConfig, WorkloadPreset};

    fn partition() -> (Schema, Vec<Sample>) {
        let gen = DatasetGenerator::new(WorkloadConfig::preset(WorkloadPreset::Tiny));
        let p = gen.generate_partition();
        (p.schema, p.samples)
    }

    #[test]
    fn land_and_read_round_trip() {
        let (schema, samples) = partition();
        let table_store = TableStore::new(TectonicSim::new(4), 32, 2);
        let (stored, report) = table_store.land_partition(&schema, "rm_table", 0, &samples);
        assert_eq!(report.rows, samples.len());
        assert_eq!(stored.files.len(), samples.len().div_ceil(64));
        assert!(report.compression_ratio() > 1.0);
        assert!(report.stored_bytes > 0);
        assert_eq!(table_store.blob_store().stats().blobs, stored.files.len());
        let read_back = table_store.read_partition(&schema, &stored).unwrap();
        assert_eq!(read_back, samples);
        assert!(table_store.blob_store().stats().read_bytes > 0);
    }

    #[test]
    fn clustered_partition_stores_fewer_bytes() {
        // End-to-end statement of O2's storage claim at table granularity.
        let (schema, samples) = partition();
        let mut clustered = samples.clone();
        clustered.sort_by_key(|s| (s.session_id, s.timestamp));

        let store = TableStore::new(TectonicSim::new(4), 64, 4);
        let (_, baseline) = store.land_partition(&schema, "baseline", 0, &samples);
        let (_, recd) = store.land_partition(&schema, "clustered", 0, &clustered);
        assert_eq!(baseline.raw_bytes, recd.raw_bytes);
        assert!(
            recd.stored_bytes < baseline.stored_bytes,
            "clustered: {} vs baseline: {}",
            recd.stored_bytes,
            baseline.stored_bytes
        );
    }

    #[test]
    fn prepared_partition_retries_without_reencoding() {
        let (schema, samples) = partition();
        let store = TableStore::new(TectonicSim::new(2), 32, 2);
        let prepared = store.prepare_partition(&schema, "t", 1, &samples[..128]);
        assert_eq!(prepared.stored().files.len(), prepared.blobs.len());

        // Fault the first attempt; the retry stores the same shared blobs.
        store.blob_store().fail_next_puts(1);
        assert!(store.try_store_prepared(&prepared).is_err());
        let (stored, report) = store.try_store_prepared(&prepared).unwrap();
        assert_eq!(&stored, prepared.stored());
        assert_eq!(&report, prepared.report());
        // The stored blobs are the prepared allocations, not copies.
        let first = store.blob_store().get(&stored.files[0]).unwrap();
        assert!(Arc::ptr_eq(&first, &prepared.blobs[0]));
        let read_back = store.read_partition(&schema, &stored).unwrap();
        assert_eq!(read_back, samples[..128]);
    }

    #[test]
    fn missing_file_is_an_error() {
        let (schema, samples) = partition();
        let store = TableStore::new(TectonicSim::new(2), 16, 1);
        let (mut stored, _) = store.land_partition(&schema, "t", 3, &samples[..32]);
        stored.files.push("t/hour=3/file-99999.dwrf".to_string());
        assert!(store.read_partition(&schema, &stored).is_err());
    }
}
