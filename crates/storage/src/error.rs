//! Error type for storage-format and blob-store failures.

use std::error::Error;
use std::fmt;

/// Errors produced by the storage layer.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum StorageError {
    /// A stripe or file failed to decode.
    Corrupt {
        /// Description of what failed.
        reason: String,
    },
    /// An underlying codec error (decompression or varint decoding).
    Codec(recd_codec::CodecError),
    /// The requested blob does not exist in the store.
    NotFound {
        /// The requested path.
        path: String,
    },
    /// The file was written with a different schema than the one used to
    /// read it.
    SchemaMismatch {
        /// Schema fingerprint stored in the file.
        expected: u64,
        /// Fingerprint of the schema supplied by the reader.
        actual: u64,
    },
    /// A stripe index was out of range.
    StripeOutOfRange {
        /// The requested stripe.
        index: usize,
        /// Number of stripes in the file.
        stripes: usize,
    },
    /// A transient fault injected by the chaos engine (see
    /// [`TectonicSim::fail_next_gets`](crate::TectonicSim::fail_next_gets)).
    /// Always retryable: the underlying blob (if any) is intact.
    Injected {
        /// The operation that was failed (`"get"` or `"put"`).
        op: &'static str,
        /// The path the operation targeted.
        path: String,
    },
}

impl StorageError {
    /// Whether the error is a transient injected fault that a bounded-retry
    /// policy should retry rather than surface.
    pub fn is_transient(&self) -> bool {
        matches!(self, StorageError::Injected { .. })
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Corrupt { reason } => write!(f, "corrupt storage data: {reason}"),
            StorageError::Codec(err) => write!(f, "codec failure: {err}"),
            StorageError::NotFound { path } => write!(f, "blob `{path}` not found"),
            StorageError::SchemaMismatch { expected, actual } => write!(
                f,
                "schema fingerprint mismatch: file has {expected:#x}, reader supplied {actual:#x}"
            ),
            StorageError::StripeOutOfRange { index, stripes } => {
                write!(f, "stripe {index} out of range ({stripes} stripes)")
            }
            StorageError::Injected { op, path } => {
                write!(f, "injected transient {op} fault on `{path}`")
            }
        }
    }
}

impl Error for StorageError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            StorageError::Codec(err) => Some(err),
            _ => None,
        }
    }
}

impl From<recd_codec::CodecError> for StorageError {
    fn from(err: recd_codec::CodecError) -> Self {
        StorageError::Codec(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let err = StorageError::from(recd_codec::CodecError::VarintOverflow);
        assert!(err.to_string().contains("codec"));
        assert!(err.source().is_some());
        let err = StorageError::NotFound {
            path: "t/p0/f1".into(),
        };
        assert!(err.to_string().contains("t/p0/f1"));
    }
}
