//! Stripe encoding: a run of rows stored as flattened, encoded, compressed
//! column streams.

use crate::{Result, StorageError};
use recd_codec::{delta, varint, Compressor};
use recd_data::{ColumnarBatch, Sample, Schema};
use serde::{Deserialize, Serialize};

/// Byte accounting for one encoded stripe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct StripeStats {
    /// Number of rows in the stripe.
    pub rows: usize,
    /// Logical payload bytes of the rows (dense + sparse + header fields).
    pub raw_bytes: usize,
    /// Bytes after columnar encoding, before block compression.
    pub encoded_bytes: usize,
    /// Bytes after block compression — what is actually stored and fetched.
    pub compressed_bytes: usize,
}

impl StripeStats {
    /// Compression ratio relative to the logical payload.
    pub fn compression_ratio(&self) -> f64 {
        if self.compressed_bytes == 0 {
            1.0
        } else {
            self.raw_bytes as f64 / self.compressed_bytes as f64
        }
    }
}

/// Encodes a stripe of samples into a compressed byte block.
///
/// Layout (before compression): row count, then session/request/timestamp
/// columns (delta-encoded), the label column, each dense column as raw f32
/// bytes, and each sparse column as a lengths stream plus a values stream.
pub fn encode_stripe(schema: &Schema, samples: &[Sample]) -> (Vec<u8>, StripeStats) {
    let mut buf = Vec::new();
    varint::encode_u64(samples.len() as u64, &mut buf);

    // Header columns.
    let sessions: Vec<u64> = samples.iter().map(|s| s.session_id.raw()).collect();
    let requests: Vec<u64> = samples.iter().map(|s| s.request_id.raw()).collect();
    let timestamps: Vec<u64> = samples.iter().map(|s| s.timestamp.as_millis()).collect();
    buf.extend_from_slice(&delta::encode(&sessions));
    buf.extend_from_slice(&delta::encode(&requests));
    buf.extend_from_slice(&delta::encode(&timestamps));
    for s in samples {
        buf.extend_from_slice(&s.label.to_le_bytes());
    }

    // Dense columns.
    for d in 0..schema.dense_count() {
        for s in samples {
            let v = s.dense.get(d).copied().unwrap_or(0.0);
            buf.extend_from_slice(&v.to_le_bytes());
        }
    }

    // Sparse columns: lengths stream + values stream per feature.
    for spec in schema.sparse_features() {
        let fi = spec.id.index();
        let lengths: Vec<u64> = samples
            .iter()
            .map(|s| s.sparse.get(fi).map(|l| l.len() as u64).unwrap_or(0))
            .collect();
        let mut values: Vec<u64> = Vec::new();
        for s in samples {
            if let Some(list) = s.sparse.get(fi) {
                values.extend_from_slice(list);
            }
        }
        buf.extend_from_slice(&varint::encode_u64_slice(&lengths));
        buf.extend_from_slice(&varint::encode_u64_slice(&values));
    }

    let encoded_bytes = buf.len();
    let compressed = Compressor::Lz.compress(&buf);
    let stats = StripeStats {
        rows: samples.len(),
        raw_bytes: samples.iter().map(Sample::payload_bytes).sum(),
        encoded_bytes,
        compressed_bytes: compressed.len(),
    };
    (compressed, stats)
}

/// Reusable scratch buffers for the in-place stripe decoders: the
/// decompressed block and the per-feature lengths stream. A fill worker
/// holds one `DecodeScratch` for its whole lifetime, so steady-state decode
/// allocates nothing beyond buffer growth.
#[derive(Debug, Default)]
pub struct DecodeScratch {
    buf: Vec<u8>,
    lengths: Vec<u64>,
}

/// Decodes a stripe produced by [`encode_stripe`] straight into a
/// [`ColumnarBatch`] — the zero-copy fill path.
///
/// The stripe layout is already columnar, so every decoded stream lands in a
/// flat buffer without materializing per-row `Vec`s: header columns move in
/// as decoded, dense values are strided into one row-major buffer, and each
/// sparse feature's value stream decodes directly into its
/// [`SparseColumn`] with offsets prefix-summed from the lengths stream.
///
/// # Errors
///
/// Returns a [`StorageError`] if decompression or any column decode fails.
pub fn decode_stripe_columnar(schema: &Schema, block: &[u8]) -> Result<ColumnarBatch> {
    let mut out = ColumnarBatch::new(schema.dense_count(), schema.sparse_count());
    decode_stripe_columnar_into(schema, block, &mut DecodeScratch::default(), &mut out)?;
    Ok(out)
}

/// Decodes a stripe into a caller-provided (typically recycled) batch,
/// clearing it first — the buffer-reusing variant of
/// [`decode_stripe_columnar`] that the streaming fill workers run: with a
/// long-lived [`DecodeScratch`] and a pooled batch, a steady-state decode
/// performs no heap allocation at all. On error the batch contents are
/// unspecified (a recycled batch is cleared before reuse anyway).
///
/// # Errors
///
/// Returns a [`StorageError`] if decompression or any column decode fails.
pub fn decode_stripe_columnar_into(
    schema: &Schema,
    block: &[u8],
    scratch: &mut DecodeScratch,
    out: &mut ColumnarBatch,
) -> Result<()> {
    let dense_cols = schema.dense_count();
    out.reset(dense_cols, schema.sparse_count());
    Compressor::Lz.decompress_into(block, &mut scratch.buf)?;
    let buf = scratch.buf.as_slice();
    let mut cursor = 0usize;

    let (rows, used) = varint::decode_u64(&buf[cursor..])?;
    cursor += used;
    let rows = rows as usize;

    let columns = out.columns_mut();

    cursor += delta::decode_into(&buf[cursor..], columns.sessions)?;
    cursor += delta::decode_into(&buf[cursor..], columns.requests)?;
    cursor += delta::decode_into(&buf[cursor..], columns.timestamps)?;
    if columns.sessions.len() != rows
        || columns.requests.len() != rows
        || columns.timestamps.len() != rows
    {
        return Err(StorageError::Corrupt {
            reason: "header column length mismatch".to_string(),
        });
    }

    columns.labels.reserve(rows);
    for _ in 0..rows {
        if cursor + 4 > buf.len() {
            return Err(StorageError::Corrupt {
                reason: "label column truncated".to_string(),
            });
        }
        columns.labels.push(f32::from_le_bytes([
            buf[cursor],
            buf[cursor + 1],
            buf[cursor + 2],
            buf[cursor + 3],
        ]));
        cursor += 4;
    }

    columns.dense.resize(rows * dense_cols, 0.0);
    for col in 0..dense_cols {
        for row in 0..rows {
            if cursor + 4 > buf.len() {
                return Err(StorageError::Corrupt {
                    reason: "dense column truncated".to_string(),
                });
            }
            columns.dense[row * dense_cols + col] = f32::from_le_bytes([
                buf[cursor],
                buf[cursor + 1],
                buf[cursor + 2],
                buf[cursor + 3],
            ]);
            cursor += 4;
        }
    }

    for column in columns.sparse.iter_mut() {
        cursor += varint::decode_u64_slice_into(&buf[cursor..], &mut scratch.lengths)?;
        let (values, offsets) = column.parts_mut();
        cursor += varint::decode_u64_slice_into(&buf[cursor..], values)?;
        if scratch.lengths.len() != rows {
            return Err(StorageError::Corrupt {
                reason: "sparse lengths column length mismatch".to_string(),
            });
        }
        offsets.clear();
        offsets.reserve(rows + 1);
        offsets.push(0);
        let mut total = 0usize;
        for &len in &scratch.lengths {
            total += len as usize;
            offsets.push(total);
        }
        if total != values.len() {
            return Err(StorageError::Corrupt {
                reason: "sparse values column length mismatch".to_string(),
            });
        }
    }

    out.check_invariants().map_err(|err| StorageError::Corrupt {
        reason: err.to_string(),
    })
}

/// Decodes a stripe produced by [`encode_stripe`] into row-wise samples.
///
/// This is a compatibility wrapper over [`decode_stripe_columnar`]: the
/// columnar decode runs first (flat buffers only) and rows are materialized
/// at the end, so even the row-wise path no longer builds intermediate
/// vec-of-vec columns.
///
/// # Errors
///
/// Returns a [`StorageError`] if decompression or any column decode fails.
pub fn decode_stripe(schema: &Schema, block: &[u8]) -> Result<Vec<Sample>> {
    Ok(decode_stripe_columnar(schema, block)?.into_samples())
}

#[cfg(test)]
mod tests {
    use super::*;
    use recd_datagen::{DatasetGenerator, WorkloadConfig, WorkloadPreset};

    fn partition() -> (Schema, Vec<Sample>) {
        let gen = DatasetGenerator::new(WorkloadConfig::preset(WorkloadPreset::Tiny));
        let p = gen.generate_partition();
        (p.schema, p.samples)
    }

    #[test]
    fn round_trip_preserves_every_row() {
        let (schema, samples) = partition();
        let stripe_rows = &samples[..64.min(samples.len())];
        let (block, stats) = encode_stripe(&schema, stripe_rows);
        assert_eq!(stats.rows, stripe_rows.len());
        assert!(stats.compressed_bytes > 0);
        assert!(stats.encoded_bytes >= stats.compressed_bytes);
        let decoded = decode_stripe(&schema, &block).unwrap();
        assert_eq!(decoded, stripe_rows);
    }

    #[test]
    fn columnar_and_row_wise_decodes_agree() {
        let (schema, samples) = partition();
        let stripe_rows = &samples[..128.min(samples.len())];
        let (block, _) = encode_stripe(&schema, stripe_rows);
        let columnar = decode_stripe_columnar(&schema, &block).unwrap();
        assert_eq!(columnar.len(), stripe_rows.len());
        assert_eq!(columnar.dense_cols(), schema.dense_count());
        assert_eq!(columnar.sparse_cols(), schema.sparse_count());
        assert_eq!(columnar.to_samples(), stripe_rows);
        // The columnar view reads individual rows without materializing them.
        for (i, sample) in stripe_rows.iter().enumerate() {
            assert_eq!(columnar.session_id(i), sample.session_id);
            assert_eq!(columnar.labels()[i], sample.label);
            for (f, list) in sample.sparse.iter().enumerate() {
                assert_eq!(columnar.sparse_row(f, i), list.as_slice());
            }
        }
    }

    #[test]
    fn corrupted_blocks_are_columnar_errors_too() {
        let (schema, samples) = partition();
        let (block, _) = encode_stripe(&schema, &samples[..16]);
        for cut in [0, 1, block.len() / 2, block.len().saturating_sub(1)] {
            assert!(decode_stripe_columnar(&schema, &block[..cut]).is_err());
        }
    }

    #[test]
    fn empty_stripe_round_trip() {
        let (schema, _) = partition();
        let (block, stats) = encode_stripe(&schema, &[]);
        assert_eq!(stats.rows, 0);
        assert!(decode_stripe(&schema, &block).unwrap().is_empty());
    }

    #[test]
    fn clustered_rows_compress_better_than_interleaved() {
        // The storage-level mechanism behind O2: adjacent duplicate rows in a
        // stripe compress better.
        let (schema, samples) = partition();
        let mut clustered = samples.clone();
        clustered.sort_by_key(|s| (s.session_id, s.timestamp));
        let take = 128.min(samples.len());
        let (_, interleaved_stats) = encode_stripe(&schema, &samples[..take]);
        let (_, clustered_stats) = encode_stripe(&schema, &clustered[..take]);
        assert!(
            clustered_stats.compression_ratio() > interleaved_stats.compression_ratio(),
            "clustered {:.2} vs interleaved {:.2}",
            clustered_stats.compression_ratio(),
            interleaved_stats.compression_ratio()
        );
    }

    #[test]
    fn corrupted_blocks_are_errors_not_panics() {
        let (schema, samples) = partition();
        let (block, _) = encode_stripe(&schema, &samples[..16]);
        for cut in [0, 1, block.len() / 2, block.len().saturating_sub(1)] {
            assert!(decode_stripe(&schema, &block[..cut]).is_err());
        }
        let mut flipped = block.clone();
        if let Some(byte) = flipped.get_mut(8) {
            *byte ^= 0xff;
        }
        // Either an error or (rarely) a benign decode difference — never a panic.
        let _ = decode_stripe(&schema, &flipped);
    }
}
