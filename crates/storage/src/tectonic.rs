//! A blob-store simulation standing in for the Tectonic distributed
//! filesystem: put/get with per-node storage and read accounting, an
//! optional per-node request-queue model (service rate + bandwidth cap),
//! and an optional LRU blob cache tier in front of the nodes.
//!
//! # Queueing model
//!
//! With a [`NodeConfig`] installed, every get and put is charged against the
//! queue of the node holding (or receiving) the blob: an op entering at
//! clock time `now` starts at `max(now, busy_until)`, occupies the node for
//! `1/service_rate + len/bandwidth` seconds, and the caller physically waits
//! until its finish time. Latency therefore *emerges* from queue depth and
//! transfer size — concurrent fetchers pile up on a hot node while a
//! balanced placement spreads them — and ETL landings genuinely contend
//! with reader fetches for the same node. Without a `NodeConfig` the store
//! falls back to the legacy flat per-fetch latency knob
//! ([`with_get_latency`](TectonicSim::with_get_latency)).
//!
//! Queue time is read from a shared [`ScaleClock`] (wall-anchored by
//! default), so tests can freeze time and assert wait accounting exactly.

use crate::{Result, StorageError};
use parking_lot::{Mutex, RwLock};
use recd_obs::ScaleClock;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Aggregate blob-store accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct BlobStats {
    /// Number of blobs stored.
    pub blobs: usize,
    /// Total stored bytes.
    pub stored_bytes: usize,
    /// Number of get operations served (read IOPS).
    pub read_ops: usize,
    /// Total bytes served by get operations.
    pub read_bytes: usize,
    /// Number of put operations accepted (write IOPS).
    pub put_ops: usize,
    /// Total bytes accepted by put operations.
    pub put_bytes: usize,
    /// Number of get operations failed by injected transient faults.
    pub injected_get_failures: usize,
    /// Number of put operations failed by injected transient faults.
    pub injected_put_failures: usize,
}

/// Per-node service model for the queued storage path: every node serves
/// ops at a fixed rate and moves bytes at a fixed bandwidth, so op latency
/// emerges from queue depth plus transfer size.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeConfig {
    /// Ops per second one node can start (seek/metadata cost: each op holds
    /// the node for `1/service_rate` seconds before byte transfer).
    pub service_rate: f64,
    /// Bytes per second one node can move.
    pub bandwidth: f64,
}

impl NodeConfig {
    /// Creates a node model.
    ///
    /// # Panics
    ///
    /// Panics unless both parameters are finite and positive.
    pub fn new(service_rate: f64, bandwidth: f64) -> Self {
        assert!(
            service_rate.is_finite() && service_rate > 0.0,
            "node service rate must be finite and positive"
        );
        assert!(
            bandwidth.is_finite() && bandwidth > 0.0,
            "node bandwidth must be finite and positive"
        );
        Self {
            service_rate,
            bandwidth,
        }
    }

    /// Seconds one node is occupied serving an op of `bytes`, under a
    /// brown-out `cut` factor (1.0 = healthy).
    fn service_seconds(&self, bytes: usize, cut: f64) -> f64 {
        (1.0 / self.service_rate + bytes as f64 / self.bandwidth) * cut
    }
}

/// How puts pick a node for a new blob. Overwrites always stay on the
/// blob's original node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum PlacementPolicy {
    /// Hash the path (the default; deterministic but can clump).
    #[default]
    HashPath,
    /// Rotate through nodes in put order.
    RoundRobin,
    /// Place on the node currently storing the fewest bytes.
    LeastLoadedBytes,
}

/// Per-node queue accounting, reported by
/// [`node_stats`](TectonicSim::node_stats) and exported as
/// `recd_storage_node_*` series.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct NodeStats {
    /// Bytes currently stored on this node.
    pub stored_bytes: usize,
    /// Ops charged to this node's queue (gets + puts).
    pub ops: u64,
    /// Bytes moved through this node's queue.
    pub bytes: u64,
    /// Cumulative seconds ops spent waiting behind the queue before service.
    pub wait_seconds: f64,
    /// Cumulative seconds this node spent servicing ops.
    pub busy_seconds: f64,
    /// Ops currently queued or in service on this node.
    pub depth: u64,
}

/// Cache-tier accounting, reported by
/// [`cache_stats`](TectonicSim::cache_stats) and exported as
/// `recd_storage_cache_*` series.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CacheStats {
    /// Gets served from the cache.
    pub hits: u64,
    /// Gets that had to fall through to a storage node.
    pub misses: u64,
    /// Entries evicted to stay within the byte budget.
    pub evictions: u64,
    /// Bytes currently cached.
    pub bytes: usize,
    /// Configured byte budget (0 = cache disabled).
    pub capacity_bytes: usize,
    /// Entries currently cached.
    pub entries: usize,
}

impl CacheStats {
    /// Fraction of gets served from the cache (0 when no gets were seen).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Shared fault-injection knobs: armed fail-next-N budgets plus cumulative
/// accounting, shared across clones exactly like the latency knob so a chaos
/// engine can fault a store that readers are already fetching from.
#[derive(Debug, Default)]
struct FaultState {
    fail_gets: AtomicU64,
    fail_puts: AtomicU64,
    injected_get_failures: AtomicU64,
    injected_put_failures: AtomicU64,
}

impl FaultState {
    /// Consumes one unit of an armed fault budget; returns `true` when a
    /// fault should fire.
    fn consume(budget: &AtomicU64) -> bool {
        budget
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| n.checked_sub(1))
            .is_ok()
    }
}

/// Read accounting, kept out of the blob map's lock so gets only contend on
/// the map's *read* lock (and cache hits touch no lock at all).
#[derive(Debug, Default)]
struct ReadCounters {
    ops: AtomicU64,
    bytes: AtomicU64,
}

#[derive(Debug, Default)]
struct Inner {
    /// Blob bytes plus the node the blob was placed on.
    blobs: HashMap<String, (Arc<Vec<u8>>, usize)>,
    node_bytes: Vec<usize>,
    /// Running total so [`TectonicSim::stats`] is O(1) in blob count.
    stored_bytes: usize,
    put_ops: usize,
    put_bytes: usize,
    round_robin: usize,
}

/// One node's virtual-time queue.
#[derive(Debug, Default)]
struct NodeQueue {
    busy_until: f64,
    ops: u64,
    bytes: u64,
    wait_nanos: u64,
    busy_nanos: u64,
}

/// Queue-model state, shared across clones.
struct QueueState {
    config: RwLock<Option<NodeConfig>>,
    /// Brown-out service-time multiplier as `f64` bits; 1.0 = healthy.
    rate_cut_bits: AtomicU64,
    queues: Vec<Mutex<NodeQueue>>,
    depth: Vec<AtomicU64>,
    clock: RwLock<Arc<dyn ScaleClock>>,
}

impl std::fmt::Debug for QueueState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueueState")
            .field("config", &*self.config.read())
            .field(
                "rate_cut",
                &f64::from_bits(self.rate_cut_bits.load(Ordering::Acquire)),
            )
            .field("nodes", &self.queues.len())
            .finish_non_exhaustive()
    }
}

impl QueueState {
    fn new(nodes: usize) -> Self {
        Self {
            config: RwLock::new(None),
            rate_cut_bits: AtomicU64::new(1.0f64.to_bits()),
            queues: (0..nodes)
                .map(|_| Mutex::new(NodeQueue::default()))
                .collect(),
            depth: (0..nodes).map(|_| AtomicU64::new(0)).collect(),
            clock: RwLock::new(Arc::new(WallAnchor {
                started: Instant::now(),
            })),
        }
    }
}

/// The default queue clock: seconds since store creation. `wait_tick` is
/// never used by the store; it reports shutdown so a stray waiter exits.
#[derive(Debug)]
struct WallAnchor {
    started: Instant,
}

impl ScaleClock for WallAnchor {
    fn wait_tick(&self) -> bool {
        false
    }

    fn shutdown(&self) {}

    fn now_seconds(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }
}

#[derive(Debug)]
struct CacheEntry {
    blob: Arc<Vec<u8>>,
    last_used: u64,
}

/// LRU state: entries keyed by path, with a lazy recency queue (stale queue
/// entries — superseded by a later touch — are skipped during eviction).
#[derive(Debug, Default)]
struct CacheInner {
    /// Byte budget; 0 disables the tier entirely.
    capacity: usize,
    bytes: usize,
    tick: u64,
    map: HashMap<String, CacheEntry>,
    lru: VecDeque<(u64, String)>,
}

#[derive(Debug, Default)]
struct CacheState {
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    inner: Mutex<CacheInner>,
}

/// The blob store. Cloning is cheap and clones share state, so a reader tier
/// can fetch from the same store concurrently.
#[derive(Debug, Clone)]
pub struct TectonicSim {
    inner: Arc<RwLock<Inner>>,
    nodes: usize,
    placement: PlacementPolicy,
    reads: Arc<ReadCounters>,
    /// Simulated per-fetch latency in nanoseconds — the legacy flat model,
    /// used only when no [`NodeConfig`] is installed. Shared across clones
    /// so a test or experiment can throttle and un-throttle a store that
    /// readers are already fetching from.
    get_latency_nanos: Arc<AtomicU64>,
    /// Armed transient-fault budgets, shared across clones.
    faults: Arc<FaultState>,
    queue: Arc<QueueState>,
    cache: Arc<CacheState>,
}

impl TectonicSim {
    /// Creates a store spread over `nodes` storage nodes.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero.
    pub fn new(nodes: usize) -> Self {
        assert!(nodes > 0, "a blob store needs at least one node");
        Self {
            inner: Arc::new(RwLock::new(Inner {
                node_bytes: vec![0; nodes],
                ..Inner::default()
            })),
            nodes,
            placement: PlacementPolicy::HashPath,
            reads: Arc::new(ReadCounters::default()),
            get_latency_nanos: Arc::new(AtomicU64::new(0)),
            faults: Arc::new(FaultState::default()),
            queue: Arc::new(QueueState::new(nodes)),
            cache: Arc::new(CacheState::default()),
        }
    }

    /// Installs the per-node queue model: gets and puts are charged against
    /// the owning node's queue and latency emerges from depth + transfer
    /// size instead of the flat [`with_get_latency`](Self::with_get_latency)
    /// knob.
    #[must_use]
    pub fn with_node_config(self, config: NodeConfig) -> Self {
        self.set_node_config(Some(config));
        self
    }

    /// Changes (or removes) the node model of a live store; shared across
    /// clones.
    pub fn set_node_config(&self, config: Option<NodeConfig>) {
        *self.queue.config.write() = config;
    }

    /// The installed node model, if any.
    pub fn node_config(&self) -> Option<NodeConfig> {
        *self.queue.config.read()
    }

    /// Whether the per-node queue model is active.
    pub fn queueing_enabled(&self) -> bool {
        self.node_config().is_some()
    }

    /// Sets how puts place *new* blobs onto nodes. Build-time only: clones
    /// made before this call keep the previous policy.
    #[must_use]
    pub fn with_placement(mut self, placement: PlacementPolicy) -> Self {
        self.placement = placement;
        self
    }

    /// Replaces the queue clock (wall-anchored by default). Tests freeze
    /// time this way to assert wait accounting exactly. Shared across
    /// clones.
    #[must_use]
    pub fn with_queue_clock(self, clock: Arc<dyn ScaleClock>) -> Self {
        *self.queue.clock.write() = clock;
        self
    }

    /// Enables the LRU blob cache tier with a byte budget (0 disables it).
    /// Cache hits skip the node queues entirely — the cache is what absorbs
    /// node contention. Puts invalidate the cached entry, so readers never
    /// see stale bytes. Shared across clones.
    #[must_use]
    pub fn with_cache(self, capacity_bytes: usize) -> Self {
        self.cache.inner.lock().capacity = capacity_bytes;
        self
    }

    /// Whether the cache tier is enabled.
    pub fn cache_enabled(&self) -> bool {
        self.cache.inner.lock().capacity > 0
    }

    /// Current cache-tier accounting.
    pub fn cache_stats(&self) -> CacheStats {
        let inner = self.cache.inner.lock();
        CacheStats {
            hits: self.cache.hits.load(Ordering::Acquire),
            misses: self.cache.misses.load(Ordering::Acquire),
            evictions: self.cache.evictions.load(Ordering::Acquire),
            bytes: inner.bytes,
            capacity_bytes: inner.capacity,
            entries: inner.map.len(),
        }
    }

    /// Applies a brown-out: service times on every node are multiplied by
    /// `factor` until the cut is restored to 1.0. The chaos engine's
    /// `SlowStorage` fault uses this on queue-enabled stores instead of a
    /// flat latency bump. Shared across clones.
    ///
    /// # Panics
    ///
    /// Panics unless `factor` is finite and at least 1.0.
    pub fn set_rate_cut(&self, factor: f64) {
        assert!(
            factor.is_finite() && factor >= 1.0,
            "rate cut must be a finite factor >= 1"
        );
        self.queue
            .rate_cut_bits
            .store(factor.to_bits(), Ordering::Release);
    }

    /// The current brown-out factor (1.0 = healthy).
    pub fn rate_cut(&self) -> f64 {
        f64::from_bits(self.queue.rate_cut_bits.load(Ordering::Acquire))
    }

    /// Per-node queue accounting (index = node).
    pub fn node_stats(&self) -> Vec<NodeStats> {
        let node_bytes = self.inner.read().node_bytes.clone();
        (0..self.nodes)
            .map(|node| {
                let q = self.queue.queues[node].lock();
                NodeStats {
                    stored_bytes: node_bytes[node],
                    ops: q.ops,
                    bytes: q.bytes,
                    wait_seconds: q.wait_nanos as f64 / 1e9,
                    busy_seconds: q.busy_nanos as f64 / 1e9,
                    depth: self.queue.depth[node].load(Ordering::Acquire),
                }
            })
            .collect()
    }

    /// Mean queue wait per charged op across all nodes (zero when the queue
    /// model is off or no ops were charged).
    pub fn mean_queue_wait(&self) -> Duration {
        let (mut wait_nanos, mut ops) = (0u64, 0u64);
        for q in &self.queue.queues {
            let q = q.lock();
            wait_nanos += q.wait_nanos;
            ops += q.ops;
        }
        wait_nanos
            .checked_div(ops)
            .map_or(Duration::ZERO, Duration::from_nanos)
    }

    /// Arms the next `count` [`get`](Self::get) calls (across all clones) to
    /// fail with a transient [`StorageError::Injected`] before touching the
    /// store. Budgets accumulate; each faulted call consumes one unit.
    pub fn fail_next_gets(&self, count: u64) {
        self.faults.fail_gets.fetch_add(count, Ordering::AcqRel);
    }

    /// Arms the next `count` [`try_put`](Self::try_put) calls to fail with a
    /// transient [`StorageError::Injected`]. Infallible [`put`](Self::put)
    /// calls are never faulted, so a budget cannot wedge callers that have no
    /// retry path.
    pub fn fail_next_puts(&self, count: u64) {
        self.faults.fail_puts.fetch_add(count, Ordering::AcqRel);
    }

    /// Clears any armed fault budgets (cumulative failure counters are kept).
    pub fn clear_faults(&self) {
        self.faults.fail_gets.store(0, Ordering::Release);
        self.faults.fail_puts.store(0, Ordering::Release);
    }

    /// Total `(get, put)` operations failed by injected faults so far.
    pub fn injected_failures(&self) -> (u64, u64) {
        (
            self.faults.injected_get_failures.load(Ordering::Acquire),
            self.faults.injected_put_failures.load(Ordering::Acquire),
        )
    }

    /// Simulates per-fetch network latency: every [`get`](Self::get) sleeps
    /// for `latency` outside the store lock, the way a production reader
    /// waits on an RPC. Concurrent fetchers overlap their waits, so this
    /// makes fill-parallelism effects observable even on a single core.
    /// Ignored while a [`NodeConfig`] is installed (queue waits replace it).
    #[must_use]
    pub fn with_get_latency(self, latency: Duration) -> Self {
        self.set_get_latency(latency);
        self
    }

    /// Changes the simulated fetch latency of a live store. The setting is
    /// shared across clones, so injecting (and later clearing) storage
    /// pressure mid-run is one call — the lever the dynamic-scaling tests
    /// pull to make fill workers fall behind and then catch up.
    pub fn set_get_latency(&self, latency: Duration) {
        self.get_latency_nanos.store(
            latency.as_nanos().min(u64::MAX as u128) as u64,
            Ordering::Release,
        );
    }

    /// The currently simulated per-fetch latency.
    pub fn get_latency(&self) -> Duration {
        Duration::from_nanos(self.get_latency_nanos.load(Ordering::Acquire))
    }

    /// Number of storage nodes.
    pub fn node_count(&self) -> usize {
        self.nodes
    }

    /// Consumes an armed put-fault budget unit, if any. Called before any
    /// blob copy so a faulted (and later retried) attempt never allocates.
    fn check_put_fault(&self, path: &str) -> Result<()> {
        if FaultState::consume(&self.faults.fail_puts) {
            self.faults
                .injected_put_failures
                .fetch_add(1, Ordering::AcqRel);
            return Err(StorageError::Injected {
                op: "put",
                path: path.to_string(),
            });
        }
        Ok(())
    }

    /// Stores a blob under `path` like [`put`](Self::put), but subject to
    /// injected transient faults: if a [`fail_next_puts`](Self::fail_next_puts)
    /// budget is armed, the call consumes one unit and fails before copying
    /// any bytes, so retry loops don't reallocate per attempt. Callers that
    /// already hold a shared blob should prefer
    /// [`try_put_blob`](Self::try_put_blob), which never copies at all.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::Injected`] when an armed fault fires.
    pub fn try_put(&self, path: &str, bytes: &[u8]) -> Result<()> {
        self.check_put_fault(path)?;
        self.put(path, bytes.to_vec());
        Ok(())
    }

    /// Fallible zero-copy put: stores the shared blob itself. The retry-safe
    /// landing path serializes a file once and calls this per attempt.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::Injected`] when an armed fault fires.
    pub fn try_put_blob(&self, path: &str, blob: &Arc<Vec<u8>>) -> Result<()> {
        self.check_put_fault(path)?;
        self.put_blob(path, Arc::clone(blob));
        Ok(())
    }

    /// Stores a blob under `path`, replacing any previous blob at that path.
    pub fn put(&self, path: &str, bytes: Vec<u8>) {
        self.put_blob(path, Arc::new(bytes));
    }

    /// Stores an already-shared blob without copying its bytes.
    pub fn put_blob(&self, path: &str, blob: Arc<Vec<u8>>) {
        let len = blob.len();
        let node = {
            let mut inner = self.inner.write();
            // Overwrites stay on the blob's original node; only new blobs
            // consult the placement policy.
            let existing = inner.blobs.get(path).map(|(_, node)| *node);
            let node = existing.unwrap_or_else(|| self.place(&mut inner, path));
            if let Some((old, old_node)) = inner.blobs.insert(path.to_string(), (blob, node)) {
                inner.node_bytes[old_node] = inner.node_bytes[old_node].saturating_sub(old.len());
                inner.stored_bytes = inner.stored_bytes.saturating_sub(old.len());
            }
            inner.node_bytes[node] += len;
            inner.stored_bytes += len;
            inner.put_ops += 1;
            inner.put_bytes += len;
            node
        };
        // Never serve stale bytes: drop any cached copy of the old blob.
        self.cache_invalidate(path);
        self.queue_charge(node, len);
    }

    fn place(&self, inner: &mut Inner, path: &str) -> usize {
        match self.placement {
            PlacementPolicy::HashPath => {
                (recd_codec::hash_bytes(path.as_bytes()) % self.nodes as u64) as usize
            }
            PlacementPolicy::RoundRobin => {
                let node = inner.round_robin % self.nodes;
                inner.round_robin = inner.round_robin.wrapping_add(1);
                node
            }
            PlacementPolicy::LeastLoadedBytes => inner
                .node_bytes
                .iter()
                .enumerate()
                .min_by_key(|(_, bytes)| **bytes)
                .map(|(node, _)| node)
                .unwrap_or(0),
        }
    }

    /// Fetches a blob, counting the read.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::NotFound`] if no blob exists at `path`, or
    /// [`StorageError::Injected`] when an armed transient fault fires (the
    /// blob is intact; the caller should retry).
    pub fn get(&self, path: &str) -> Result<Arc<Vec<u8>>> {
        self.fetch(path)
    }

    /// Fetches a blob into a caller-owned buffer (cleared first), so hot
    /// fill loops can recycle one allocation across fetches. Same fault,
    /// cache, and queue behavior as [`get`](Self::get); returns the blob
    /// length.
    ///
    /// # Errors
    ///
    /// Same error conditions as [`get`](Self::get).
    pub fn get_into(&self, path: &str, out: &mut Vec<u8>) -> Result<usize> {
        let blob = self.fetch(path)?;
        out.clear();
        out.extend_from_slice(&blob);
        Ok(blob.len())
    }

    fn fetch(&self, path: &str) -> Result<Arc<Vec<u8>>> {
        if FaultState::consume(&self.faults.fail_gets) {
            self.faults
                .injected_get_failures
                .fetch_add(1, Ordering::AcqRel);
            return Err(StorageError::Injected {
                op: "get",
                path: path.to_string(),
            });
        }
        if let Some(blob) = self.cache_lookup(path) {
            // Cache hits bypass the node queues (and the flat latency knob):
            // absorbing node contention is the tier's whole point.
            self.reads.ops.fetch_add(1, Ordering::AcqRel);
            self.reads
                .bytes
                .fetch_add(blob.len() as u64, Ordering::AcqRel);
            return Ok(blob);
        }
        let (blob, node) = {
            let inner = self.inner.read();
            inner
                .blobs
                .get(path)
                .map(|(blob, node)| (Arc::clone(blob), *node))
                .ok_or_else(|| StorageError::NotFound {
                    path: path.to_string(),
                })?
        };
        self.reads.ops.fetch_add(1, Ordering::AcqRel);
        self.reads
            .bytes
            .fetch_add(blob.len() as u64, Ordering::AcqRel);
        self.cache_insert(path, &blob);
        if !self.queue_charge(node, blob.len()) {
            let latency = self.get_latency();
            if !latency.is_zero() {
                std::thread::sleep(latency);
            }
        }
        Ok(blob)
    }

    /// Charges an op of `bytes` against `node`'s queue and waits for its
    /// finish time. Returns `false` (and does nothing) when no node model is
    /// installed, so the caller can fall back to the flat-latency knob.
    fn queue_charge(&self, node: usize, bytes: usize) -> bool {
        let Some(config) = self.node_config() else {
            return false;
        };
        let service = config.service_seconds(bytes, self.rate_cut());
        self.queue.depth[node].fetch_add(1, Ordering::AcqRel);
        let now = self.queue.clock.read().now_seconds();
        let sleep = {
            let mut q = self.queue.queues[node].lock();
            let start = if q.busy_until > now {
                q.busy_until
            } else {
                now
            };
            let finish = start + service;
            q.busy_until = finish;
            q.ops += 1;
            q.bytes += bytes as u64;
            q.wait_nanos += ((start - now) * 1e9) as u64;
            q.busy_nanos += (service * 1e9) as u64;
            finish - now
        };
        if sleep > 0.0 {
            std::thread::sleep(Duration::from_secs_f64(sleep));
        }
        self.queue.depth[node].fetch_sub(1, Ordering::AcqRel);
        true
    }

    fn cache_lookup(&self, path: &str) -> Option<Arc<Vec<u8>>> {
        let mut cache = self.cache.inner.lock();
        if cache.capacity == 0 {
            return None;
        }
        cache.tick += 1;
        let tick = cache.tick;
        let hit = match cache.map.get_mut(path) {
            Some(entry) => {
                entry.last_used = tick;
                Some(Arc::clone(&entry.blob))
            }
            None => None,
        };
        if hit.is_some() {
            cache.lru.push_back((tick, path.to_string()));
        }
        drop(cache);
        match hit {
            Some(blob) => {
                self.cache.hits.fetch_add(1, Ordering::AcqRel);
                Some(blob)
            }
            None => {
                self.cache.misses.fetch_add(1, Ordering::AcqRel);
                None
            }
        }
    }

    fn cache_insert(&self, path: &str, blob: &Arc<Vec<u8>>) {
        let mut cache = self.cache.inner.lock();
        if cache.capacity == 0 || blob.len() > cache.capacity {
            return;
        }
        cache.tick += 1;
        let tick = cache.tick;
        let len = blob.len();
        if let Some(old) = cache.map.insert(
            path.to_string(),
            CacheEntry {
                blob: Arc::clone(blob),
                last_used: tick,
            },
        ) {
            cache.bytes = cache.bytes.saturating_sub(old.blob.len());
        }
        cache.bytes += len;
        cache.lru.push_back((tick, path.to_string()));
        let mut evicted = 0u64;
        while cache.bytes > cache.capacity {
            let Some((queued_tick, victim)) = cache.lru.pop_front() else {
                break;
            };
            // Lazy LRU: a queue entry superseded by a later touch is stale.
            let fresh = matches!(cache.map.get(&victim), Some(e) if e.last_used == queued_tick);
            if !fresh {
                continue;
            }
            if let Some(e) = cache.map.remove(&victim) {
                cache.bytes = cache.bytes.saturating_sub(e.blob.len());
                evicted += 1;
            }
        }
        drop(cache);
        if evicted > 0 {
            self.cache.evictions.fetch_add(evicted, Ordering::AcqRel);
        }
    }

    fn cache_invalidate(&self, path: &str) {
        let mut cache = self.cache.inner.lock();
        if cache.capacity == 0 {
            return;
        }
        if let Some(e) = cache.map.remove(path) {
            cache.bytes = cache.bytes.saturating_sub(e.blob.len());
        }
    }

    /// Lists paths with the given prefix, sorted.
    pub fn list(&self, prefix: &str) -> Vec<String> {
        let inner = self.inner.read();
        let mut paths: Vec<String> = inner
            .blobs
            .keys()
            .filter(|p| p.starts_with(prefix))
            .cloned()
            .collect();
        paths.sort();
        paths
    }

    /// Current aggregate statistics. O(1) in blob count: `stored_bytes` is
    /// a running total maintained by puts, not recomputed per scrape.
    pub fn stats(&self) -> BlobStats {
        let inner = self.inner.read();
        BlobStats {
            blobs: inner.blobs.len(),
            stored_bytes: inner.stored_bytes,
            read_ops: self.reads.ops.load(Ordering::Acquire) as usize,
            read_bytes: self.reads.bytes.load(Ordering::Acquire) as usize,
            put_ops: inner.put_ops,
            put_bytes: inner.put_bytes,
            injected_get_failures: self.faults.injected_get_failures.load(Ordering::Acquire)
                as usize,
            injected_put_failures: self.faults.injected_put_failures.load(Ordering::Acquire)
                as usize,
        }
    }

    /// Bytes stored per node, for load-balance inspection.
    pub fn node_bytes(&self) -> Vec<usize> {
        self.inner.read().node_bytes.clone()
    }

    /// Resets the read counters (storage contents are kept). Used between
    /// experiment phases that reuse one store.
    pub fn reset_read_counters(&self) {
        self.reads.ops.store(0, Ordering::Release);
        self.reads.bytes.store(0, Ordering::Release);
    }
}

impl recd_obs::Collector for TectonicSim {
    fn collect(&self, out: &mut recd_obs::MetricsBuf) {
        let stats = self.stats();
        out.counter(
            "recd_storage_get_ops_total",
            "Blob-store get operations served (read IOPS).",
            &[],
            stats.read_ops as f64,
        );
        out.counter(
            "recd_storage_get_bytes_total",
            "Bytes served by blob-store get operations.",
            &[],
            stats.read_bytes as f64,
        );
        out.counter(
            "recd_storage_put_ops_total",
            "Blob-store put operations accepted (write IOPS).",
            &[],
            stats.put_ops as f64,
        );
        out.counter(
            "recd_storage_put_bytes_total",
            "Bytes accepted by blob-store put operations.",
            &[],
            stats.put_bytes as f64,
        );
        out.gauge(
            "recd_storage_blobs",
            "Blobs currently stored.",
            &[],
            stats.blobs as f64,
        );
        out.gauge(
            "recd_storage_stored_bytes",
            "Total bytes currently stored across all nodes.",
            &[],
            stats.stored_bytes as f64,
        );
        out.gauge(
            "recd_storage_nodes",
            "Storage nodes backing the simulated blob store.",
            &[],
            self.node_count() as f64,
        );
        out.counter(
            "recd_storage_injected_failures_total",
            "Operations failed by chaos-injected transient faults.",
            &[("op", "get")],
            stats.injected_get_failures as f64,
        );
        out.counter(
            "recd_storage_injected_failures_total",
            "Operations failed by chaos-injected transient faults.",
            &[("op", "put")],
            stats.injected_put_failures as f64,
        );
        if self.cache_enabled() {
            let cache = self.cache_stats();
            out.counter(
                "recd_storage_cache_hits_total",
                "Blob-store gets served from the cache tier.",
                &[],
                cache.hits as f64,
            );
            out.counter(
                "recd_storage_cache_misses_total",
                "Blob-store gets that fell through to a storage node.",
                &[],
                cache.misses as f64,
            );
            out.counter(
                "recd_storage_cache_evictions_total",
                "Cache entries evicted to stay within the byte budget.",
                &[],
                cache.evictions as f64,
            );
            out.gauge(
                "recd_storage_cache_bytes",
                "Bytes currently held by the blob cache tier.",
                &[],
                cache.bytes as f64,
            );
            out.gauge(
                "recd_storage_cache_capacity_bytes",
                "Configured byte budget of the blob cache tier.",
                &[],
                cache.capacity_bytes as f64,
            );
        }
        if self.queueing_enabled() {
            for (node, ns) in self.node_stats().iter().enumerate() {
                let node = node.to_string();
                let labels = [("node", node.as_str())];
                out.gauge(
                    "recd_storage_node_depth",
                    "Ops currently queued or in service on this storage node.",
                    &labels,
                    ns.depth as f64,
                );
                out.counter(
                    "recd_storage_node_ops_total",
                    "Ops charged to this storage node's queue.",
                    &labels,
                    ns.ops as f64,
                );
                out.counter(
                    "recd_storage_node_bytes_total",
                    "Bytes moved through this storage node's queue.",
                    &labels,
                    ns.bytes as f64,
                );
                out.counter(
                    "recd_storage_node_busy_seconds_total",
                    "Seconds this storage node spent servicing ops.",
                    &labels,
                    ns.busy_seconds,
                );
                out.counter(
                    "recd_storage_node_wait_seconds_total",
                    "Seconds ops spent waiting in this storage node's queue.",
                    &labels,
                    ns.wait_seconds,
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_list_and_stats() {
        let store = TectonicSim::new(4);
        store.put("table/p0/f0", vec![1, 2, 3]);
        store.put("table/p0/f1", vec![4; 100]);
        store.put("other/x", vec![9]);

        assert_eq!(store.node_count(), 4);
        assert_eq!(store.list("table/p0/"), vec!["table/p0/f0", "table/p0/f1"]);
        assert_eq!(store.get("table/p0/f0").unwrap().as_slice(), &[1, 2, 3]);
        assert!(matches!(
            store.get("missing"),
            Err(StorageError::NotFound { .. })
        ));

        let stats = store.stats();
        assert_eq!(stats.blobs, 3);
        assert_eq!(stats.stored_bytes, 104);
        assert_eq!(stats.read_ops, 1);
        assert_eq!(stats.read_bytes, 3);
        assert_eq!(stats.put_ops, 3);
        assert_eq!(stats.put_bytes, 104);
        assert_eq!(store.node_bytes().iter().sum::<usize>(), 104);
    }

    #[test]
    fn overwrite_replaces_bytes_and_counters_reset() {
        let store = TectonicSim::new(2);
        store.put("a", vec![0; 50]);
        store.put("a", vec![0; 10]);
        assert_eq!(store.stats().stored_bytes, 10);
        store.get("a").unwrap();
        store.reset_read_counters();
        assert_eq!(store.stats().read_ops, 0);
        assert_eq!(store.stats().read_bytes, 0);
    }

    #[test]
    fn running_stored_bytes_tracks_many_overwrites() {
        // stats() must stay exact without re-summing blobs per call.
        let store = TectonicSim::new(3);
        for round in 1..=5usize {
            for blob in 0..10usize {
                store.put(&format!("b{blob}"), vec![0; round * (blob + 1)]);
            }
        }
        let expected: usize = (0..10).map(|blob| 5 * (blob + 1)).sum();
        assert_eq!(store.stats().stored_bytes, expected);
        assert_eq!(store.node_bytes().iter().sum::<usize>(), expected);
    }

    #[test]
    fn clones_share_state_across_threads() {
        let store = TectonicSim::new(2);
        let clone = store.clone();
        let handle = std::thread::spawn(move || {
            clone.put("from-thread", vec![7; 7]);
        });
        handle.join().unwrap();
        assert_eq!(store.get("from-thread").unwrap().len(), 7);
        // Ops performed through the clone are visible on the original.
        let stats = store.stats();
        assert_eq!(stats.put_ops, 1);
        assert_eq!(stats.put_bytes, 7);
        assert_eq!(stats.read_ops, 1);
    }

    #[test]
    fn collector_exports_get_put_counters() {
        use recd_obs::{sample_value, Collector, MetricsBuf};
        let store = TectonicSim::new(2);
        store.put("a", vec![0; 10]);
        store.get("a").unwrap();
        let mut buf = MetricsBuf::new();
        store.collect(&mut buf);
        let families = buf.into_families();
        assert_eq!(
            sample_value(&families, "recd_storage_put_bytes_total", &[]),
            Some(10.0)
        );
        assert_eq!(
            sample_value(&families, "recd_storage_get_ops_total", &[]),
            Some(1.0)
        );
        assert_eq!(
            sample_value(&families, "recd_storage_nodes", &[]),
            Some(2.0)
        );
        // Cache and node-queue families stay out of the scrape while the
        // tiers are disabled.
        assert_eq!(
            sample_value(&families, "recd_storage_cache_hits_total", &[]),
            None
        );
        assert_eq!(
            sample_value(&families, "recd_storage_node_ops_total", &[("node", "0")]),
            None
        );
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_panics() {
        TectonicSim::new(0);
    }

    #[test]
    fn injected_get_faults_fire_exactly_n_times_and_are_shared() {
        let store = TectonicSim::new(2);
        store.put("a", vec![1, 2]);
        let clone = store.clone();
        clone.fail_next_gets(2);
        assert!(matches!(
            store.get("a"),
            Err(StorageError::Injected { op: "get", .. })
        ));
        assert!(store.get("a").unwrap_err().is_transient());
        // Budget exhausted: the blob is intact and reads succeed again.
        assert_eq!(store.get("a").unwrap().as_slice(), &[1, 2]);
        assert_eq!(store.injected_failures(), (2, 0));
        assert_eq!(store.stats().injected_get_failures, 2);
    }

    #[test]
    fn injected_put_faults_spare_the_infallible_path() {
        let store = TectonicSim::new(1);
        store.fail_next_puts(1);
        // The infallible path never consumes a fault budget.
        store.put("safe", vec![9]);
        assert!(matches!(
            store.try_put("blocked", &[1]),
            Err(StorageError::Injected { op: "put", .. })
        ));
        assert!(store.get("blocked").is_err());
        // Retry succeeds once the budget is spent.
        store.try_put("blocked", &[1]).unwrap();
        assert_eq!(store.get("blocked").unwrap().as_slice(), &[1]);
        assert_eq!(store.injected_failures(), (0, 1));
    }

    #[test]
    fn try_put_blob_faults_before_touching_the_blob_and_never_copies() {
        let store = TectonicSim::new(1);
        let blob = Arc::new(vec![5u8; 64]);
        store.fail_next_puts(1);
        assert!(store.try_put_blob("p", &blob).is_err());
        assert!(store.get("p").is_err());
        store.try_put_blob("p", &blob).unwrap();
        // The store holds the same allocation, not a copy.
        let stored = store.get("p").unwrap();
        assert!(Arc::ptr_eq(&stored, &blob));
    }

    #[test]
    fn clear_faults_disarms_pending_budgets() {
        let store = TectonicSim::new(1);
        store.put("a", vec![1]);
        store.fail_next_gets(10);
        store.fail_next_puts(10);
        store.clear_faults();
        assert!(store.get("a").is_ok());
        assert!(store.try_put("b", &[2]).is_ok());
        assert_eq!(store.injected_failures(), (0, 0));
    }

    #[test]
    fn collector_exports_injected_failure_counters() {
        use recd_obs::{sample_value, Collector, MetricsBuf};
        let store = TectonicSim::new(1);
        store.put("a", vec![1]);
        store.fail_next_gets(1);
        let _ = store.get("a");
        let mut buf = MetricsBuf::new();
        store.collect(&mut buf);
        let families = buf.into_families();
        assert_eq!(
            sample_value(
                &families,
                "recd_storage_injected_failures_total",
                &[("op", "get")]
            ),
            Some(1.0)
        );
        assert_eq!(
            sample_value(
                &families,
                "recd_storage_injected_failures_total",
                &[("op", "put")]
            ),
            Some(0.0)
        );
    }

    #[test]
    fn get_latency_is_shared_across_clones_and_adjustable() {
        let store = TectonicSim::new(1).with_get_latency(Duration::from_millis(3));
        let clone = store.clone();
        assert_eq!(clone.get_latency(), Duration::from_millis(3));
        // Throttle changes propagate to clones already handed out.
        clone.set_get_latency(Duration::ZERO);
        assert_eq!(store.get_latency(), Duration::ZERO);
        store.put("a", vec![1]);
        let start = std::time::Instant::now();
        store.get("a").unwrap();
        assert!(start.elapsed() < Duration::from_millis(100));
    }

    #[test]
    fn concurrent_gets_overlap_wall_clock() {
        // The reader-path bugfix: gets take the read lock, so concurrent
        // fetchers overlap their simulated RPC waits instead of serializing.
        let store = TectonicSim::new(1).with_get_latency(Duration::from_millis(25));
        store.set_get_latency(Duration::from_millis(25));
        store.put("a", vec![1; 128]);
        let start = Instant::now();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let store = store.clone();
                std::thread::spawn(move || store.get("a").unwrap().len())
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 128);
        }
        let elapsed = start.elapsed();
        // Serialized waits would take >= 100ms; overlapping ones take ~25ms.
        assert!(
            elapsed < Duration::from_millis(85),
            "concurrent gets serialized: {elapsed:?}"
        );
        assert_eq!(store.stats().read_ops, 4);
    }

    #[test]
    fn queued_gets_on_one_node_serialize_and_spread_nodes_overlap() {
        // Four concurrent fetches of blobs on one node queue behind each
        // other; the same fetches spread over four nodes overlap.
        let config = NodeConfig::new(50.0, 1e9); // 20ms per op
        let elapsed_for = |nodes: usize| {
            let store = TectonicSim::new(nodes)
                .with_placement(PlacementPolicy::RoundRobin)
                .with_node_config(config);
            for i in 0..4 {
                store.put(&format!("b{i}"), vec![0; 8]);
            }
            let start = Instant::now();
            let handles: Vec<_> = (0..4)
                .map(|i| {
                    let store = store.clone();
                    std::thread::spawn(move || store.get(&format!("b{i}")).unwrap())
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            (start.elapsed(), store)
        };
        let (hot, hot_store) = elapsed_for(1);
        let (spread, spread_store) = elapsed_for(4);
        // One node: the 4 concurrent gets queue behind each other, so the
        // last one finishes no earlier than 4 service times after the puts
        // drained. Spread over 4 nodes they overlap (~1 service time).
        assert!(
            hot >= Duration::from_millis(70),
            "hot node did not queue: {hot:?}"
        );
        assert!(
            spread < hot,
            "spreading nodes did not help: {spread:?} vs {hot:?}"
        );
        let hot_stats = hot_store.node_stats();
        assert_eq!(hot_stats[0].ops, 8);
        assert!(hot_stats[0].wait_seconds > 0.0);
        let spread_ops: u64 = spread_store.node_stats().iter().map(|n| n.ops).sum();
        assert_eq!(spread_ops, 8);
    }

    /// A frozen clock: queue time never advances, so every charged op's
    /// start/wait accounting is exact.
    #[derive(Debug)]
    struct FrozenClock;

    impl ScaleClock for FrozenClock {
        fn wait_tick(&self) -> bool {
            false
        }
        fn shutdown(&self) {}
        fn now_seconds(&self) -> f64 {
            0.0
        }
    }

    #[test]
    fn queue_wait_accounting_is_exact_under_a_frozen_clock() {
        // service = 1/1000 + 1000/1e6 = 2ms per op, every op on node 0.
        let store = TectonicSim::new(1)
            .with_node_config(NodeConfig::new(1000.0, 1e6))
            .with_queue_clock(Arc::new(FrozenClock));
        store.put("a", vec![0; 1000]); // op 1: start 0ms, finish 2ms
        store.get("a").unwrap(); // op 2: start 2ms (waits 2ms), finish 4ms
        store.get("a").unwrap(); // op 3: start 4ms (waits 4ms), finish 6ms
        let stats = &store.node_stats()[0];
        assert_eq!(stats.ops, 3);
        assert_eq!(stats.bytes, 3000);
        assert!((stats.busy_seconds - 0.006).abs() < 1e-6, "{stats:?}");
        assert!((stats.wait_seconds - 0.006).abs() < 1e-6, "{stats:?}");
        assert_eq!(stats.depth, 0);
        assert!(store.mean_queue_wait() >= Duration::from_millis(1));
    }

    #[test]
    fn rate_cut_scales_service_time_and_restores() {
        let store = TectonicSim::new(1)
            .with_node_config(NodeConfig::new(1e5, 1e9))
            .with_queue_clock(Arc::new(FrozenClock));
        store.put("a", vec![0; 100]);
        let healthy = store.node_stats()[0].busy_seconds;
        store.set_rate_cut(10.0);
        assert_eq!(store.rate_cut(), 10.0);
        store.get("a").unwrap();
        let cut = store.node_stats()[0].busy_seconds - healthy;
        assert!(
            (cut - healthy * 10.0).abs() < healthy,
            "cut service {cut} vs healthy {healthy}"
        );
        store.set_rate_cut(1.0);
        assert_eq!(store.rate_cut(), 1.0);
    }

    #[test]
    fn cache_serves_hits_evicts_lru_and_invalidates_on_put() {
        let store = TectonicSim::new(2).with_cache(250);
        store.put("a", vec![1; 100]);
        store.put("b", vec![2; 100]);
        store.put("c", vec![3; 100]);

        store.get("a").unwrap(); // miss, cached {a}
        store.get("a").unwrap(); // hit
        store.get("b").unwrap(); // miss, cached {a,b}
        store.get("a").unwrap(); // hit (refreshes a's recency)
        store.get("c").unwrap(); // miss; b is LRU and must be evicted
        let stats = store.cache_stats();
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.misses, 3);
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.bytes, 200);
        assert!((stats.hit_ratio() - 0.4).abs() < 1e-9);

        store.get("b").unwrap(); // miss again: it was evicted
        assert_eq!(store.cache_stats().misses, 4);

        // Overwriting a cached path drops the stale entry; the next read
        // sees the new bytes (and is a miss).
        store.put("a", vec![9; 10]);
        assert_eq!(store.get("a").unwrap().as_slice(), &[9; 10]);
        assert_eq!(store.cache_stats().misses, 5);
    }

    #[test]
    fn cache_hits_skip_node_queue_charges() {
        let store = TectonicSim::new(1)
            .with_node_config(NodeConfig::new(1e5, 1e9))
            .with_cache(1 << 20)
            .with_queue_clock(Arc::new(FrozenClock));
        store.put("a", vec![0; 100]);
        store.get("a").unwrap(); // miss: charged to node 0
        let charged = store.node_stats()[0].ops;
        store.get("a").unwrap(); // hit: no node charge
        store.get("a").unwrap(); // hit
        assert_eq!(store.node_stats()[0].ops, charged);
        assert_eq!(store.cache_stats().hits, 2);
    }

    #[test]
    fn get_into_recycles_the_buffer_and_matches_get() {
        let store = TectonicSim::new(2).with_cache(1 << 10);
        store.put("a", vec![7; 300]);
        store.put("b", vec![8; 5]);
        let mut buf = Vec::new();
        assert_eq!(store.get_into("a", &mut buf).unwrap(), 300);
        assert_eq!(buf, store.get("a").unwrap().as_slice());
        let capacity = buf.capacity();
        // A smaller blob reuses the same allocation.
        assert_eq!(store.get_into("b", &mut buf).unwrap(), 5);
        assert_eq!(buf, vec![8; 5]);
        assert_eq!(buf.capacity(), capacity);
        assert!(matches!(
            store.get_into("missing", &mut buf),
            Err(StorageError::NotFound { .. })
        ));
    }

    #[test]
    fn placement_policies_spread_new_blobs() {
        let round_robin = TectonicSim::new(4).with_placement(PlacementPolicy::RoundRobin);
        for i in 0..8 {
            round_robin.put(&format!("rr/{i}"), vec![0; 10]);
        }
        assert_eq!(round_robin.node_bytes(), vec![20; 4]);

        let least = TectonicSim::new(4).with_placement(PlacementPolicy::LeastLoadedBytes);
        // Skewed blob sizes: least-loaded still keeps the spread tight.
        for i in 0..8 {
            least.put(&format!("ll/{i}"), vec![0; 10 + i]);
        }
        let bytes = least.node_bytes();
        let (min, max) = (*bytes.iter().min().unwrap(), *bytes.iter().max().unwrap());
        assert!(max - min <= 17, "least-loaded spread too wide: {bytes:?}");

        // Overwrites stay on the original node under every policy.
        let before = round_robin.node_bytes();
        round_robin.put("rr/0", vec![0; 10]);
        assert_eq!(round_robin.node_bytes(), before);
    }

    #[test]
    fn collector_exports_cache_and_node_queue_families_when_enabled() {
        use recd_obs::{sample_value, Collector, MetricsBuf};
        let store = TectonicSim::new(2)
            .with_node_config(NodeConfig::new(1e6, 1e9))
            .with_cache(1 << 20)
            .with_queue_clock(Arc::new(FrozenClock));
        store.put("a", vec![0; 10]);
        store.get("a").unwrap(); // miss
        store.get("a").unwrap(); // hit
        let mut buf = MetricsBuf::new();
        store.collect(&mut buf);
        let families = buf.into_families();
        assert_eq!(
            sample_value(&families, "recd_storage_cache_hits_total", &[]),
            Some(1.0)
        );
        assert_eq!(
            sample_value(&families, "recd_storage_cache_misses_total", &[]),
            Some(1.0)
        );
        assert_eq!(
            sample_value(&families, "recd_storage_cache_bytes", &[]),
            Some(10.0)
        );
        let node = (recd_codec::hash_bytes(b"a") % 2) as usize;
        let label = node.to_string();
        assert_eq!(
            sample_value(
                &families,
                "recd_storage_node_ops_total",
                &[("node", label.as_str())]
            ),
            Some(2.0) // the put + the miss; the hit skipped the queue
        );
        assert_eq!(
            sample_value(
                &families,
                "recd_storage_node_depth",
                &[("node", label.as_str())]
            ),
            Some(0.0)
        );
    }
}
