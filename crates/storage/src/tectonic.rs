//! A blob-store simulation standing in for the Tectonic distributed
//! filesystem: put/get with per-node storage and read accounting.

use crate::{Result, StorageError};
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Aggregate blob-store accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct BlobStats {
    /// Number of blobs stored.
    pub blobs: usize,
    /// Total stored bytes.
    pub stored_bytes: usize,
    /// Number of get operations served (read IOPS).
    pub read_ops: usize,
    /// Total bytes served by get operations.
    pub read_bytes: usize,
    /// Number of put operations accepted (write IOPS).
    pub put_ops: usize,
    /// Total bytes accepted by put operations.
    pub put_bytes: usize,
    /// Number of get operations failed by injected transient faults.
    pub injected_get_failures: usize,
    /// Number of put operations failed by injected transient faults.
    pub injected_put_failures: usize,
}

/// Shared fault-injection knobs: armed fail-next-N budgets plus cumulative
/// accounting, shared across clones exactly like the latency knob so a chaos
/// engine can fault a store that readers are already fetching from.
#[derive(Debug, Default)]
struct FaultState {
    fail_gets: AtomicU64,
    fail_puts: AtomicU64,
    injected_get_failures: AtomicU64,
    injected_put_failures: AtomicU64,
}

impl FaultState {
    /// Consumes one unit of an armed fault budget; returns `true` when a
    /// fault should fire.
    fn consume(budget: &AtomicU64) -> bool {
        budget
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| n.checked_sub(1))
            .is_ok()
    }
}

#[derive(Debug, Default)]
struct Inner {
    blobs: HashMap<String, Arc<Vec<u8>>>,
    node_bytes: Vec<usize>,
    read_ops: usize,
    read_bytes: usize,
    put_ops: usize,
    put_bytes: usize,
}

/// The blob store. Cloning is cheap and clones share state, so a reader tier
/// can fetch from the same store concurrently.
#[derive(Debug, Clone)]
pub struct TectonicSim {
    inner: Arc<RwLock<Inner>>,
    nodes: usize,
    /// Simulated per-fetch latency in nanoseconds, shared across clones so a
    /// test or experiment can throttle and un-throttle a store that readers
    /// are already fetching from.
    get_latency_nanos: Arc<AtomicU64>,
    /// Armed transient-fault budgets, shared across clones.
    faults: Arc<FaultState>,
}

impl TectonicSim {
    /// Creates a store spread over `nodes` storage nodes.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero.
    pub fn new(nodes: usize) -> Self {
        assert!(nodes > 0, "a blob store needs at least one node");
        Self {
            inner: Arc::new(RwLock::new(Inner {
                node_bytes: vec![0; nodes],
                ..Inner::default()
            })),
            nodes,
            get_latency_nanos: Arc::new(AtomicU64::new(0)),
            faults: Arc::new(FaultState::default()),
        }
    }

    /// Arms the next `count` [`get`](Self::get) calls (across all clones) to
    /// fail with a transient [`StorageError::Injected`] before touching the
    /// store. Budgets accumulate; each faulted call consumes one unit.
    pub fn fail_next_gets(&self, count: u64) {
        self.faults.fail_gets.fetch_add(count, Ordering::AcqRel);
    }

    /// Arms the next `count` [`try_put`](Self::try_put) calls to fail with a
    /// transient [`StorageError::Injected`]. Infallible [`put`](Self::put)
    /// calls are never faulted, so a budget cannot wedge callers that have no
    /// retry path.
    pub fn fail_next_puts(&self, count: u64) {
        self.faults.fail_puts.fetch_add(count, Ordering::AcqRel);
    }

    /// Clears any armed fault budgets (cumulative failure counters are kept).
    pub fn clear_faults(&self) {
        self.faults.fail_gets.store(0, Ordering::Release);
        self.faults.fail_puts.store(0, Ordering::Release);
    }

    /// Total `(get, put)` operations failed by injected faults so far.
    pub fn injected_failures(&self) -> (u64, u64) {
        (
            self.faults.injected_get_failures.load(Ordering::Acquire),
            self.faults.injected_put_failures.load(Ordering::Acquire),
        )
    }

    /// Simulates per-fetch network latency: every [`get`](Self::get) sleeps
    /// for `latency` outside the store lock, the way a production reader
    /// waits on an RPC. Concurrent fetchers overlap their waits, so this
    /// makes fill-parallelism effects observable even on a single core.
    #[must_use]
    pub fn with_get_latency(self, latency: Duration) -> Self {
        self.set_get_latency(latency);
        self
    }

    /// Changes the simulated fetch latency of a live store. The setting is
    /// shared across clones, so injecting (and later clearing) storage
    /// pressure mid-run is one call — the lever the dynamic-scaling tests
    /// pull to make fill workers fall behind and then catch up.
    pub fn set_get_latency(&self, latency: Duration) {
        self.get_latency_nanos.store(
            latency.as_nanos().min(u64::MAX as u128) as u64,
            Ordering::Release,
        );
    }

    /// The currently simulated per-fetch latency.
    pub fn get_latency(&self) -> Duration {
        Duration::from_nanos(self.get_latency_nanos.load(Ordering::Acquire))
    }

    /// Number of storage nodes.
    pub fn node_count(&self) -> usize {
        self.nodes
    }

    /// Stores a blob under `path` like [`put`](Self::put), but subject to
    /// injected transient faults: if a [`fail_next_puts`](Self::fail_next_puts)
    /// budget is armed, the call consumes one unit and fails without touching
    /// the store. The storage-facing retry paths (ETL landing) call this.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::Injected`] when an armed fault fires.
    pub fn try_put(&self, path: &str, bytes: &[u8]) -> Result<()> {
        if FaultState::consume(&self.faults.fail_puts) {
            self.faults
                .injected_put_failures
                .fetch_add(1, Ordering::AcqRel);
            return Err(StorageError::Injected {
                op: "put",
                path: path.to_string(),
            });
        }
        self.put(path, bytes.to_vec());
        Ok(())
    }

    /// Stores a blob under `path`, replacing any previous blob at that path.
    pub fn put(&self, path: &str, bytes: Vec<u8>) {
        let node = (recd_codec::hash_bytes(path.as_bytes()) % self.nodes as u64) as usize;
        let mut inner = self.inner.write();
        let len = bytes.len();
        if let Some(old) = inner.blobs.insert(path.to_string(), Arc::new(bytes)) {
            inner.node_bytes[node] = inner.node_bytes[node].saturating_sub(old.len());
        }
        inner.node_bytes[node] += len;
        inner.put_ops += 1;
        inner.put_bytes += len;
    }

    /// Fetches a blob, counting the read.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::NotFound`] if no blob exists at `path`, or
    /// [`StorageError::Injected`] when an armed transient fault fires (the
    /// blob is intact; the caller should retry).
    pub fn get(&self, path: &str) -> Result<Arc<Vec<u8>>> {
        if FaultState::consume(&self.faults.fail_gets) {
            self.faults
                .injected_get_failures
                .fetch_add(1, Ordering::AcqRel);
            return Err(StorageError::Injected {
                op: "get",
                path: path.to_string(),
            });
        }
        let blob = {
            let mut inner = self.inner.write();
            let blob = inner
                .blobs
                .get(path)
                .cloned()
                .ok_or_else(|| StorageError::NotFound {
                    path: path.to_string(),
                })?;
            inner.read_ops += 1;
            inner.read_bytes += blob.len();
            blob
        };
        let latency = self.get_latency();
        if !latency.is_zero() {
            std::thread::sleep(latency);
        }
        Ok(blob)
    }

    /// Lists paths with the given prefix, sorted.
    pub fn list(&self, prefix: &str) -> Vec<String> {
        let inner = self.inner.read();
        let mut paths: Vec<String> = inner
            .blobs
            .keys()
            .filter(|p| p.starts_with(prefix))
            .cloned()
            .collect();
        paths.sort();
        paths
    }

    /// Current aggregate statistics.
    pub fn stats(&self) -> BlobStats {
        let inner = self.inner.read();
        BlobStats {
            blobs: inner.blobs.len(),
            stored_bytes: inner.blobs.values().map(|b| b.len()).sum(),
            read_ops: inner.read_ops,
            read_bytes: inner.read_bytes,
            put_ops: inner.put_ops,
            put_bytes: inner.put_bytes,
            injected_get_failures: self.faults.injected_get_failures.load(Ordering::Acquire)
                as usize,
            injected_put_failures: self.faults.injected_put_failures.load(Ordering::Acquire)
                as usize,
        }
    }

    /// Bytes stored per node, for load-balance inspection.
    pub fn node_bytes(&self) -> Vec<usize> {
        self.inner.read().node_bytes.clone()
    }

    /// Resets the read counters (storage contents are kept). Used between
    /// experiment phases that reuse one store.
    pub fn reset_read_counters(&self) {
        let mut inner = self.inner.write();
        inner.read_ops = 0;
        inner.read_bytes = 0;
    }
}

impl recd_obs::Collector for TectonicSim {
    fn collect(&self, out: &mut recd_obs::MetricsBuf) {
        let stats = self.stats();
        out.counter(
            "recd_storage_get_ops_total",
            "Blob-store get operations served (read IOPS).",
            &[],
            stats.read_ops as f64,
        );
        out.counter(
            "recd_storage_get_bytes_total",
            "Bytes served by blob-store get operations.",
            &[],
            stats.read_bytes as f64,
        );
        out.counter(
            "recd_storage_put_ops_total",
            "Blob-store put operations accepted (write IOPS).",
            &[],
            stats.put_ops as f64,
        );
        out.counter(
            "recd_storage_put_bytes_total",
            "Bytes accepted by blob-store put operations.",
            &[],
            stats.put_bytes as f64,
        );
        out.gauge(
            "recd_storage_blobs",
            "Blobs currently stored.",
            &[],
            stats.blobs as f64,
        );
        out.gauge(
            "recd_storage_stored_bytes",
            "Total bytes currently stored across all nodes.",
            &[],
            stats.stored_bytes as f64,
        );
        out.gauge(
            "recd_storage_nodes",
            "Storage nodes backing the simulated blob store.",
            &[],
            self.node_count() as f64,
        );
        out.counter(
            "recd_storage_injected_failures_total",
            "Operations failed by chaos-injected transient faults.",
            &[("op", "get")],
            stats.injected_get_failures as f64,
        );
        out.counter(
            "recd_storage_injected_failures_total",
            "Operations failed by chaos-injected transient faults.",
            &[("op", "put")],
            stats.injected_put_failures as f64,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_list_and_stats() {
        let store = TectonicSim::new(4);
        store.put("table/p0/f0", vec![1, 2, 3]);
        store.put("table/p0/f1", vec![4; 100]);
        store.put("other/x", vec![9]);

        assert_eq!(store.node_count(), 4);
        assert_eq!(store.list("table/p0/"), vec!["table/p0/f0", "table/p0/f1"]);
        assert_eq!(store.get("table/p0/f0").unwrap().as_slice(), &[1, 2, 3]);
        assert!(matches!(
            store.get("missing"),
            Err(StorageError::NotFound { .. })
        ));

        let stats = store.stats();
        assert_eq!(stats.blobs, 3);
        assert_eq!(stats.stored_bytes, 104);
        assert_eq!(stats.read_ops, 1);
        assert_eq!(stats.read_bytes, 3);
        assert_eq!(stats.put_ops, 3);
        assert_eq!(stats.put_bytes, 104);
        assert_eq!(store.node_bytes().iter().sum::<usize>(), 104);
    }

    #[test]
    fn overwrite_replaces_bytes_and_counters_reset() {
        let store = TectonicSim::new(2);
        store.put("a", vec![0; 50]);
        store.put("a", vec![0; 10]);
        assert_eq!(store.stats().stored_bytes, 10);
        store.get("a").unwrap();
        store.reset_read_counters();
        assert_eq!(store.stats().read_ops, 0);
        assert_eq!(store.stats().read_bytes, 0);
    }

    #[test]
    fn clones_share_state_across_threads() {
        let store = TectonicSim::new(2);
        let clone = store.clone();
        let handle = std::thread::spawn(move || {
            clone.put("from-thread", vec![7; 7]);
        });
        handle.join().unwrap();
        assert_eq!(store.get("from-thread").unwrap().len(), 7);
        // Ops performed through the clone are visible on the original.
        let stats = store.stats();
        assert_eq!(stats.put_ops, 1);
        assert_eq!(stats.put_bytes, 7);
        assert_eq!(stats.read_ops, 1);
    }

    #[test]
    fn collector_exports_get_put_counters() {
        use recd_obs::{sample_value, Collector, MetricsBuf};
        let store = TectonicSim::new(2);
        store.put("a", vec![0; 10]);
        store.get("a").unwrap();
        let mut buf = MetricsBuf::new();
        store.collect(&mut buf);
        let families = buf.into_families();
        assert_eq!(
            sample_value(&families, "recd_storage_put_bytes_total", &[]),
            Some(10.0)
        );
        assert_eq!(
            sample_value(&families, "recd_storage_get_ops_total", &[]),
            Some(1.0)
        );
        assert_eq!(
            sample_value(&families, "recd_storage_nodes", &[]),
            Some(2.0)
        );
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_panics() {
        TectonicSim::new(0);
    }

    #[test]
    fn injected_get_faults_fire_exactly_n_times_and_are_shared() {
        let store = TectonicSim::new(2);
        store.put("a", vec![1, 2]);
        let clone = store.clone();
        clone.fail_next_gets(2);
        assert!(matches!(
            store.get("a"),
            Err(StorageError::Injected { op: "get", .. })
        ));
        assert!(store.get("a").unwrap_err().is_transient());
        // Budget exhausted: the blob is intact and reads succeed again.
        assert_eq!(store.get("a").unwrap().as_slice(), &[1, 2]);
        assert_eq!(store.injected_failures(), (2, 0));
        assert_eq!(store.stats().injected_get_failures, 2);
    }

    #[test]
    fn injected_put_faults_spare_the_infallible_path() {
        let store = TectonicSim::new(1);
        store.fail_next_puts(1);
        // The infallible path never consumes a fault budget.
        store.put("safe", vec![9]);
        assert!(matches!(
            store.try_put("blocked", &[1]),
            Err(StorageError::Injected { op: "put", .. })
        ));
        assert!(store.get("blocked").is_err());
        // Retry succeeds once the budget is spent.
        store.try_put("blocked", &[1]).unwrap();
        assert_eq!(store.get("blocked").unwrap().as_slice(), &[1]);
        assert_eq!(store.injected_failures(), (0, 1));
    }

    #[test]
    fn clear_faults_disarms_pending_budgets() {
        let store = TectonicSim::new(1);
        store.put("a", vec![1]);
        store.fail_next_gets(10);
        store.fail_next_puts(10);
        store.clear_faults();
        assert!(store.get("a").is_ok());
        assert!(store.try_put("b", &[2]).is_ok());
        assert_eq!(store.injected_failures(), (0, 0));
    }

    #[test]
    fn collector_exports_injected_failure_counters() {
        use recd_obs::{sample_value, Collector, MetricsBuf};
        let store = TectonicSim::new(1);
        store.put("a", vec![1]);
        store.fail_next_gets(1);
        let _ = store.get("a");
        let mut buf = MetricsBuf::new();
        store.collect(&mut buf);
        let families = buf.into_families();
        assert_eq!(
            sample_value(
                &families,
                "recd_storage_injected_failures_total",
                &[("op", "get")]
            ),
            Some(1.0)
        );
        assert_eq!(
            sample_value(
                &families,
                "recd_storage_injected_failures_total",
                &[("op", "put")]
            ),
            Some(0.0)
        );
    }

    #[test]
    fn get_latency_is_shared_across_clones_and_adjustable() {
        let store = TectonicSim::new(1).with_get_latency(Duration::from_millis(3));
        let clone = store.clone();
        assert_eq!(clone.get_latency(), Duration::from_millis(3));
        // Throttle changes propagate to clones already handed out.
        clone.set_get_latency(Duration::ZERO);
        assert_eq!(store.get_latency(), Duration::ZERO);
        store.put("a", vec![1]);
        let start = std::time::Instant::now();
        store.get("a").unwrap();
        assert!(start.elapsed() < Duration::from_millis(100));
    }
}
