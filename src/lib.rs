//! # recd
//!
//! Facade crate for the RecD reproduction: a Rust implementation of
//! *"RecD: Deduplication for End-to-End Deep Learning Recommendation Model
//! Training Infrastructure"* (MLSys 2023), including every substrate the
//! paper's pipeline depends on.
//!
//! The workspace is organized bottom-up; this crate simply re-exports each
//! layer so applications can depend on one crate:
//!
//! | module | crate | what it provides |
//! |---|---|---|
//! | [`data`] | `recd-data` | ids, samples, schemas, batches |
//! | [`codec`] | `recd-codec` | hashing, varint/delta/RLE/dictionary, block LZ |
//! | [`core`] | `recd-core` | **the paper's contribution**: KJT, IKJT, dedup conversion, jagged index select, DedupeFactor |
//! | [`datagen`] | `recd-datagen` | session-centric synthetic workloads + §3 characterization |
//! | [`scribe`] | `recd-scribe` | sharded message log (O1) |
//! | [`etl`] | `recd-etl` | join, hourly partitioning, CLUSTER BY session (O2), downsampling |
//! | [`storage`] | `recd-storage` | DWRF-like columnar files + Tectonic-like blob store |
//! | [`reader`] | `recd-reader` | fill/convert/process reader tier (O3, O4) |
//! | [`dpp`] | `recd-dpp` | streaming DPP service: sharded, backpressured, multi-worker preprocessing |
//! | [`obs`] | `recd-obs` | observability plane: metrics registry, Prometheus exposition endpoint, cross-tier aggregator |
//! | [`trainer`] | `recd-trainer` | executable DLRM + hybrid-parallel cost model (O5–O7) |
//! | [`pipeline`] | `recd-pipeline` | end-to-end runner, RM presets, experiment drivers |
//!
//! # Quickstart
//!
//! ```
//! use recd::core::{DataLoaderConfig, FeatureConverter};
//! use recd::datagen::{DatasetGenerator, WorkloadConfig, WorkloadPreset};
//! use recd::etl::cluster_by_session;
//! use recd::data::SampleBatch;
//!
//! // Generate a session-centric workload, cluster it, and deduplicate a batch.
//! let generator = DatasetGenerator::new(WorkloadConfig::preset(WorkloadPreset::Tiny));
//! let partition = generator.generate_partition();
//! let clustered = cluster_by_session(&partition.samples);
//! let batch = SampleBatch::new(clustered[..64.min(clustered.len())].to_vec());
//!
//! let converter = FeatureConverter::new(DataLoaderConfig::from_schema(&partition.schema));
//! let converted = converter.convert(&batch)?;
//! assert!(converted.dedupe_factor() > 1.0);
//! # Ok::<(), recd::core::CoreError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use recd_codec as codec;
pub use recd_core as core;
pub use recd_data as data;
pub use recd_datagen as datagen;
pub use recd_dpp as dpp;
pub use recd_etl as etl;
pub use recd_obs as obs;
pub use recd_pipeline as pipeline;
pub use recd_reader as reader;
pub use recd_scribe as scribe;
pub use recd_storage as storage;
pub use recd_trainer as trainer;
