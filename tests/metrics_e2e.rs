//! End-to-end observability test: a live continuous pipeline (log tail →
//! streaming ETL → land → `recd-dpp` ingest → trainer fan-out) serves
//! `GET /metrics`, and a plain `TcpStream` scrape mid-run returns a valid
//! Prometheus text exposition carrying families from every tier.

use recd::core::DataLoaderConfig;
use recd::datagen::{DatasetGenerator, WorkloadConfig, WorkloadPreset};
use recd::dpp::{DppConfig, DppService};
use recd::etl::{EtlService, EtlStreamConfig, ManualClock, TableLayout};
use recd::obs::{scrape, Collector, MetricsRegistry, MetricsServer};
use recd::reader::{PreprocessPipeline, ReaderConfig};
use recd::scribe::{LogTail, TailConfig};
use recd::storage::{TableStore, TectonicSim};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

/// Families the scrape must carry, one (or more) per tier.
const REQUIRED_FAMILIES: &[(&str, &str)] = &[
    // Streaming ETL tier.
    ("etl", "recd_etl_records_tailed_total"),
    ("etl", "recd_etl_landed_partitions_total"),
    ("etl", "recd_etl_tail_lag_ms"),
    // DPP service tier.
    ("dpp service", "recd_dpp_samples_out_total"),
    ("dpp service", "recd_dpp_queue_depth"),
    ("dpp service", "recd_dpp_workers_live"),
    // Batch pool tier.
    ("batch pool", "recd_dpp_pool_acquires_total"),
    ("batch pool", "recd_dpp_pool_capacity"),
    // Trainer lanes.
    ("trainer lanes", "recd_dpp_trainer_queue_depth"),
    ("trainer lanes", "recd_dpp_trainer_delivered_batches_total"),
    // Storage tier.
    ("storage", "recd_storage_get_ops_total"),
    ("storage", "recd_storage_put_bytes_total"),
    // Reader phase accounting (projected through the dpp collector).
    ("reader", "recd_reader_phase_cpu_seconds_total"),
    // The server's self-instrumentation.
    ("obs", "recd_obs_scrapes_total"),
];

/// Structural validation of the exposition text: every sample line belongs
/// to a family announced by HELP+TYPE lines immediately above it, and every
/// value parses as a float.
fn assert_valid_exposition(body: &str) {
    let mut announced: Option<String> = None;
    for line in body.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split_whitespace().next().expect("HELP names a family");
            announced = Some(name.to_string());
        } else if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().expect("TYPE names a family");
            assert_eq!(
                announced.as_deref(),
                Some(name),
                "TYPE line must follow its HELP line: {line}"
            );
            let kind = parts.next().expect("TYPE declares a kind");
            assert!(
                ["counter", "gauge", "histogram"].contains(&kind),
                "unknown kind in {line}"
            );
        } else {
            let family = announced.as_deref().expect("sample before any HELP/TYPE");
            let metric_name = line
                .split(['{', ' '])
                .next()
                .expect("sample line starts with a metric name");
            assert!(
                metric_name == family
                    || metric_name
                        .strip_prefix(family)
                        .is_some_and(|s| ["_bucket", "_sum", "_count"].contains(&s)),
                "sample {metric_name} outside announced family {family}"
            );
            let value = line.rsplit(' ').next().expect("sample line has a value");
            assert!(
                value.parse::<f64>().is_ok() || ["+Inf", "-Inf", "NaN"].contains(&value),
                "unparseable sample value in {line}"
            );
        }
    }
}

#[test]
fn tail_pipeline_serves_all_tier_families_over_http() {
    // A tiny tail-fed pipeline with trainer fan-out.
    let generator = DatasetGenerator::new(WorkloadConfig::preset(WorkloadPreset::Tiny));
    let (records, partition) = generator.generate_logs();
    let schema = partition.schema;
    let store = Arc::new(TableStore::new(TectonicSim::new(4), 64, 2));
    let tail = LogTail::new(records, &TailConfig::default().with_jitter_ms(1_000));
    let mut etl = EtlService::new(
        tail,
        EtlStreamConfig::new(TableLayout::ClusteredBySession).with_window_ms(10_000),
        Arc::clone(&store),
        schema.clone(),
        "metrics-e2e",
    );
    let config = DppConfig::new(ReaderConfig::new(
        64,
        DataLoaderConfig::from_schema(&schema),
    ))
    .with_fill_workers(2)
    .with_compute_workers(2)
    .with_shards(2)
    .with_trainers(2)
    .with_pipeline_factory(|| PreprocessPipeline::standard(1 << 20, 64));
    let mut handle = DppService::start(config, Arc::clone(&store), schema);

    // Every tier registers into one registry; the server exposes it.
    let registry = Arc::new(MetricsRegistry::new());
    registry.register(Arc::new(handle.snapshot_source()) as Arc<dyn Collector>);
    registry.register(etl.gauges() as Arc<dyn Collector>);
    registry.register(Arc::new(store.blob_store().clone()) as Arc<dyn Collector>);
    let server = MetricsServer::start(Arc::clone(&registry), 0).expect("bind ephemeral port");
    let addr = server.local_addr();

    let trainers: Vec<_> = handle
        .take_trainers()
        .into_iter()
        .map(|trainer| std::thread::spawn(move || trainer.drain().len()))
        .collect();

    // Drive the pipeline, scraping over a raw TcpStream mid-run.
    let mut clock = ManualClock::new();
    let mut sink = |stored: &recd::storage::StoredPartition,
                    _sealed: &recd::etl::TablePartition| {
        handle.ingest_partition(stored);
    };
    let mut mid_run_scrape = String::new();
    while !etl.tail_drained() {
        let now = clock.advance(60_000);
        etl.pump(now, &mut sink);
        if mid_run_scrape.is_empty() {
            let mut stream = TcpStream::connect(addr).expect("connect mid-run");
            write!(
                stream,
                "GET /metrics HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
            )
            .expect("send request");
            stream
                .read_to_string(&mut mid_run_scrape)
                .expect("read response");
            assert!(
                mid_run_scrape.starts_with("HTTP/1.1 200 OK\r\n"),
                "mid-run scrape failed: {}",
                mid_run_scrape.lines().next().unwrap_or("")
            );
            assert!(
                mid_run_scrape.contains("Content-Type: text/plain; version=0.0.4"),
                "missing exposition content type"
            );
        }
    }
    etl.finish(&mut sink);
    let report = handle.finish().expect("pipeline drains cleanly").report;
    let consumed: usize = trainers
        .into_iter()
        .map(|t| t.join().expect("trainer thread"))
        .sum();
    assert!(report.samples > 0, "pipeline produced no samples");
    assert_eq!(consumed, report.batches, "trainers drained every batch");

    // Final scrape after drain: structurally valid and complete.
    let body = scrape(addr).expect("final scrape");
    assert_valid_exposition(&body);
    for (tier, family) in REQUIRED_FAMILIES {
        assert!(
            body.contains(&format!("# TYPE {family} ")),
            "{tier} family {family} missing from exposition"
        );
    }
    // The mid-run scrape already carried the cross-tier families too.
    let mid_body = mid_run_scrape
        .split_once("\r\n\r\n")
        .expect("mid-run response has a body")
        .1;
    assert_valid_exposition(mid_body);
    for (tier, family) in REQUIRED_FAMILIES {
        if *family == "recd_obs_scrapes_total" {
            continue; // first scrape: the counter increments after rendering
        }
        assert!(
            mid_body.contains(&format!("# TYPE {family} ")),
            "{tier} family {family} missing from mid-run exposition"
        );
    }
    // Both trainer lanes exported labeled series.
    assert!(body.contains("recd_dpp_trainer_queue_depth{trainer=\"0\"}"));
    assert!(body.contains("recd_dpp_trainer_queue_depth{trainer=\"1\"}"));
    // The storage tier counted the continuous landing traffic.
    assert!(body.contains("recd_storage_put_ops_total "));
    server.shutdown();
}
