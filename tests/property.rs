//! Property-based tests for the core invariants of the RecD stack.

use proptest::collection::vec;
use proptest::prelude::*;
use recd::codec::{delta, dict, rle, varint, Compressor};
use recd::core::{
    jagged_index_select, DataLoaderConfig, FeatureConverter, InverseKeyedJaggedTensor,
    JaggedTensor, KeyedJaggedTensor, PartialIkjt,
};
use recd::data::{ColumnarBatch, FeatureId, RequestId, Sample, SampleBatch, SessionId, Timestamp};
use recd::etl::cluster_by_session;
use recd::reader::{HashBucketize, PreprocessPipeline, SparseTransform, TruncateList};
use recd::storage::{decode_stripe, decode_stripe_columnar, encode_stripe};

/// One drawn duplication tuple: `(session, f0, f1)`.
type DupTuple = (u64, Vec<u64>, Vec<u64>);

/// Strategy for a batch of samples with a controlled duplication profile:
/// `dup_factor` consecutive rows share each drawn feature tuple, so low
/// factors exercise the all-distinct path and high factors the
/// mostly-duplicate path. Each drawn tuple is `(session, f0, f1)` with `f0`
/// wide (up to 10 ids) and `f1` narrow (up to 3 ids).
fn dup_batch_strategy() -> impl Strategy<Value = (usize, Vec<DupTuple>)> {
    (1usize..6).prop_flat_map(|dup_factor| {
        (
            dup_factor..=dup_factor,
            vec((0u64..8, vec(0u64..40, 0..10), vec(0u64..40, 0..3)), 1..20),
        )
    })
}

/// Expands a drawn duplication profile into concrete samples.
fn dup_samples(dup_factor: usize, tuples: &[DupTuple]) -> Vec<Sample> {
    let mut samples = Vec::with_capacity(dup_factor * tuples.len());
    for (i, (session, f0, f1)) in tuples.iter().enumerate() {
        for r in 0..dup_factor {
            let request = (i * dup_factor + r) as u64;
            samples.push(
                Sample::builder(
                    SessionId::new(*session),
                    RequestId::new(request),
                    Timestamp::from_millis(request * 3),
                )
                .label((request % 2) as f32)
                .dense(vec![request as f32, *session as f32])
                .sparse(vec![f0.clone(), f1.clone()])
                .build(),
            );
        }
    }
    samples
}

/// Strategy for a batch of rows for one feature: ids drawn from a small
/// alphabet so duplicates are common, with empty rows allowed.
fn rows_strategy() -> impl Strategy<Value = Vec<Vec<u64>>> {
    vec(vec(0u64..50, 0..12), 0..40)
}

/// Strategy for a pair of features sharing a batch size (a dedup group).
fn grouped_rows_strategy() -> impl Strategy<Value = (Vec<Vec<u64>>, Vec<Vec<u64>>)> {
    (0usize..30).prop_flat_map(|batch| {
        (
            vec(vec(0u64..20, 0..8), batch..=batch),
            vec(vec(0u64..20, 0..8), batch..=batch),
        )
    })
}

proptest! {
    /// IKJT deduplication is lossless: expanding back to a KJT reproduces the
    /// original rows exactly, for any batch.
    #[test]
    fn ikjt_round_trip_is_identity(rows in rows_strategy()) {
        let feature = FeatureId::new(0);
        let kjt = KeyedJaggedTensor::from_tensors(vec![(feature, JaggedTensor::from_lists(&rows))])
            .unwrap();
        let ikjt = InverseKeyedJaggedTensor::dedup_from_kjt(&kjt, &[feature]).unwrap();
        prop_assert!(ikjt.check_invariants().is_ok());
        prop_assert!(ikjt.slot_count() <= ikjt.batch_size().max(1));
        prop_assert!(ikjt.dedup_value_count() <= ikjt.original_value_count());
        prop_assert_eq!(ikjt.to_kjt().unwrap(), kjt);
    }

    /// Grouped dedup never violates the shared-inverse-lookup invariant and
    /// stays lossless even when the two features are not updated in sync.
    #[test]
    fn grouped_ikjt_preserves_both_features((a, b) in grouped_rows_strategy()) {
        let fa = FeatureId::new(0);
        let fb = FeatureId::new(1);
        let kjt = KeyedJaggedTensor::from_tensors(vec![
            (fa, JaggedTensor::from_lists(&a)),
            (fb, JaggedTensor::from_lists(&b)),
        ])
        .unwrap();
        let ikjt = InverseKeyedJaggedTensor::dedup_from_kjt(&kjt, &[fa, fb]).unwrap();
        prop_assert!(ikjt.check_invariants().is_ok());
        prop_assert_eq!(ikjt.to_kjt().unwrap(), kjt);
    }

    /// Jagged index select agrees with naive per-row expansion.
    #[test]
    fn jagged_select_matches_naive(rows in rows_strategy(), indices in vec(0usize..40, 0..60)) {
        let tensor = JaggedTensor::from_lists(&rows);
        let valid: Vec<usize> = indices.into_iter().filter(|&i| i < tensor.row_count()).collect();
        let selected = jagged_index_select(&tensor, &valid).unwrap();
        prop_assert_eq!(selected.row_count(), valid.len());
        for (out_row, &src) in valid.iter().enumerate() {
            prop_assert_eq!(selected.row(out_row), tensor.row(src));
        }
    }

    /// Partial IKJTs are lossless for arbitrary rows.
    #[test]
    fn partial_ikjt_round_trip(rows in rows_strategy()) {
        let p = PartialIkjt::dedup_from_rows(FeatureId::new(3), &rows);
        prop_assert!(p.dedup_value_count() <= p.original_value_count());
        let expanded = p.to_jagged().unwrap();
        prop_assert_eq!(expanded.row_count(), rows.len());
        for (i, row) in rows.iter().enumerate() {
            prop_assert_eq!(expanded.row(i), row.as_slice());
        }
    }

    /// Codec round trips: varint slices, delta, RLE, dictionary, and the LZ
    /// block compressor.
    #[test]
    fn codecs_round_trip(values in vec(any::<u64>(), 0..200), bytes in vec(any::<u8>(), 0..2000)) {
        let (decoded, _) = varint::decode_u64_slice(&varint::encode_u64_slice(&values)).unwrap();
        prop_assert_eq!(&decoded, &values);
        let (decoded, _) = delta::decode(&delta::encode(&values)).unwrap();
        prop_assert_eq!(&decoded, &values);
        let (decoded, _) = rle::decode(&rle::encode(&values)).unwrap();
        prop_assert_eq!(&decoded, &values);
        let (decoded, _) = dict::decode(&dict::encode(&values)).unwrap();
        prop_assert_eq!(&decoded, &values);
        prop_assert_eq!(Compressor::Lz.decompress(&Compressor::Lz.compress(&bytes)).unwrap(), bytes);
    }

    /// Columnar decode ⇄ row-wise decode equivalence: for any
    /// schema-conforming stripe, `decode_stripe_columnar` sees exactly the
    /// rows `decode_stripe` sees, and the columnar batch round trips
    /// losslessly through row-wise samples.
    #[test]
    fn columnar_decode_matches_row_wise_decode(
        (dup_factor, tuples) in dup_batch_strategy()
    ) {
        let schema = recd::data::Schema::builder()
            .dense("d0")
            .dense("d1")
            .dedup_groups(1)
            .sparse_with("f0", recd::data::FeatureClass::User, 4.0, 0.9, 1 << 20, 64,
                Some(recd::data::DedupGroupId::new(0)))
            .sparse("f1", recd::data::FeatureClass::Item, 2.0, 0.1, 1 << 20)
            .build()
            .unwrap();
        let samples = dup_samples(dup_factor, &tuples);
        let (block, _) = encode_stripe(&schema, &samples);

        let row_wise = decode_stripe(&schema, &block).unwrap();
        let columnar = decode_stripe_columnar(&schema, &block).unwrap();
        prop_assert_eq!(columnar.len(), row_wise.len());
        prop_assert_eq!(columnar.to_samples(), row_wise.clone());
        prop_assert_eq!(row_wise, samples.clone());
        // The columnar form agrees with direct conversion from samples.
        prop_assert_eq!(
            columnar,
            ColumnarBatch::from_samples(&samples, schema.dense_count(), schema.sparse_count())
        );
    }

    /// `dedup_from_columnar` ⇄ `dedup_from_batch` produce identical IKJTs —
    /// same slots, same inverse lookup, same tensors — across random
    /// dup-factor distributions, and the full columnar conversion is
    /// value-identical to the row-wise conversion.
    #[test]
    fn columnar_dedup_and_convert_match_row_wise(
        (dup_factor, tuples) in dup_batch_strategy()
    ) {
        let samples = dup_samples(dup_factor, &tuples);
        let batch: SampleBatch = samples.iter().cloned().collect();
        let columnar = ColumnarBatch::from_samples(&samples, 2, 2);

        for group in [vec![FeatureId::new(0)], vec![FeatureId::new(0), FeatureId::new(1)]] {
            let from_batch = InverseKeyedJaggedTensor::dedup_from_batch(&batch, &group).unwrap();
            let from_columnar =
                InverseKeyedJaggedTensor::dedup_from_columnar(&columnar, &group).unwrap();
            prop_assert_eq!(&from_batch, &from_columnar);
            prop_assert!(from_columnar.check_invariants().is_ok());
            // Duplicated tuples must actually share slots.
            prop_assert!(from_columnar.slot_count() <= tuples.len().max(1));
            prop_assert_eq!(from_batch.to_kjt().unwrap(), from_columnar.to_kjt().unwrap());
        }

        let config = DataLoaderConfig::new()
            .with_kjt_features([FeatureId::new(1)])
            .with_dedup_group([FeatureId::new(0)])
            .with_dense_features(2);
        let converter = FeatureConverter::new(config);
        prop_assert_eq!(
            converter.convert(&batch).unwrap(),
            converter.convert_columnar(&columnar).unwrap()
        );
        prop_assert_eq!(
            converter.convert_baseline(&batch).unwrap(),
            converter.convert_columnar_baseline(&columnar).unwrap()
        );
    }

    /// Flat in-place transforms ⇄ old row-wise transforms: for any jagged
    /// tensor and any transform parameters, editing the `(values, offsets)`
    /// buffers in place produces exactly the tensor the allocate-per-apply
    /// reference builds.
    #[test]
    fn flat_transforms_match_rowwise_oracle(
        rows in rows_strategy(),
        buckets in 1u64..1_000_000,
        max_len in 0usize..16,
    ) {
        let tensor = recd::core::JaggedTensor::from_lists(&rows);
        let transforms: Vec<Box<dyn SparseTransform>> = vec![
            Box::new(HashBucketize { buckets }),
            Box::new(TruncateList { max_len }),
        ];
        for t in &transforms {
            let expected = t.apply_rowwise(&tensor);
            let (mut values, mut offsets) = tensor.clone().into_parts();
            t.apply_flat(&mut values, &mut offsets, &mut recd::reader::TransformScratch::default());
            let flat = recd::core::JaggedTensor::from_parts(values, offsets).unwrap();
            prop_assert_eq!(flat, expected);
        }
    }

    /// The whole flat pipeline ⇄ the row-wise pipeline over converted
    /// batches (dedup and baseline): identical tensors, identical work
    /// accounting — and O4 (per-slot) preprocessing stays logically equal to
    /// baseline (per-row) preprocessing after the rewrite.
    #[test]
    fn flat_pipeline_matches_rowwise_and_o4_stays_logically_equal(
        (dup_factor, tuples) in dup_batch_strategy(),
        buckets in 1u64..1_000_000,
        max_len in 1usize..12,
    ) {
        let samples = dup_samples(dup_factor, &tuples);
        let batch: SampleBatch = samples.iter().cloned().collect();
        let dedup_config = DataLoaderConfig::new()
            .with_kjt_features([FeatureId::new(1)])
            .with_dedup_group([FeatureId::new(0)])
            .with_dense_features(2);
        let pipeline = PreprocessPipeline::standard(buckets, max_len);

        let converter = FeatureConverter::new(dedup_config);
        let mut flat = converter.convert(&batch).unwrap();
        let mut rowwise = flat.clone();
        let flat_stats = pipeline.apply(&mut flat);
        let rowwise_stats = pipeline.apply_rowwise(&mut rowwise);
        prop_assert_eq!(flat_stats, rowwise_stats);
        prop_assert_eq!(&flat, &rowwise);

        // O4 ⇄ baseline logical equality: transforming once per slot and
        // expanding equals transforming every row of the baseline KJT.
        let mut baseline = converter.convert_baseline(&batch).unwrap();
        let baseline_stats = pipeline.apply(&mut baseline);
        prop_assert_eq!(flat_stats.logical_values, baseline_stats.logical_values);
        prop_assert!(flat_stats.values_processed <= baseline_stats.values_processed);
        let expanded = flat.ikjts[0].to_kjt().unwrap();
        prop_assert_eq!(
            expanded.feature(FeatureId::new(0)).unwrap(),
            baseline.kjt.feature(FeatureId::new(0)).unwrap()
        );
        prop_assert_eq!(
            flat.kjt.feature(FeatureId::new(1)).unwrap(),
            baseline.kjt.feature(FeatureId::new(1)).unwrap()
        );
        // Dense normalization is shared, so the matrices agree exactly.
        prop_assert_eq!(&flat.dense, &baseline.dense);
    }

    /// Stripe encoding round trips arbitrary (schema-conforming) samples, and
    /// clustering never changes the multiset of rows.
    #[test]
    fn stripe_and_clustering_preserve_rows(
        seed_rows in vec((0u64..20, 0u64..1000, vec(0u64..100, 0..6), vec(0u64..100, 0..3)), 1..60)
    ) {
        let schema = recd::data::Schema::builder()
            .dense("d0")
            .dedup_groups(1)
            .sparse_with("f0", recd::data::FeatureClass::User, 4.0, 0.9, 1 << 20, 64,
                Some(recd::data::DedupGroupId::new(0)))
            .sparse("f1", recd::data::FeatureClass::Item, 2.0, 0.1, 1 << 20)
            .build()
            .unwrap();
        let samples: Vec<Sample> = seed_rows
            .iter()
            .enumerate()
            .map(|(i, (session, ts, f0, f1))| {
                Sample::builder(SessionId::new(*session), RequestId::new(i as u64), Timestamp::from_millis(*ts))
                    .label((i % 2) as f32)
                    .dense(vec![*ts as f32])
                    .sparse(vec![f0.clone(), f1.clone()])
                    .build()
            })
            .collect();

        // Stripe round trip.
        let (block, stats) = encode_stripe(&schema, &samples);
        prop_assert_eq!(stats.rows, samples.len());
        prop_assert_eq!(decode_stripe(&schema, &block).unwrap(), samples.clone());

        // Clustering preserves the multiset of request ids and keeps each
        // session contiguous.
        let clustered = cluster_by_session(&samples);
        let mut before: Vec<u64> = samples.iter().map(|s| s.request_id.raw()).collect();
        let mut after: Vec<u64> = clustered.iter().map(|s| s.request_id.raw()).collect();
        before.sort_unstable();
        after.sort_unstable();
        prop_assert_eq!(before, after);
        // Contiguity: once we leave a session we never see it again.
        let mut seen = std::collections::HashSet::new();
        let mut current = None;
        for s in &clustered {
            if current != Some(s.session_id) {
                prop_assert!(seen.insert(s.session_id), "session split apart");
                current = Some(s.session_id);
            }
        }
    }
}
