//! Cross-crate integration tests: the full pipeline (data generation →
//! Scribe → ETL → storage → readers → trainer model) run through the public
//! facade, with every RecD optimization toggled.

use recd::core::{DataLoaderConfig, FeatureConverter};
use recd::data::SampleBatch;
use recd::datagen::{DatasetGenerator, WorkloadConfig, WorkloadPreset};
use recd::etl::cluster_by_session;
use recd::pipeline::experiments::{self, ExperimentScale};
use recd::pipeline::{PipelineRunner, RecdConfig, RmPreset};
use recd::trainer::{Dlrm, DlrmConfig, ExecutionMode, PoolingKind};

/// The headline end-to-end claim: enabling RecD improves storage efficiency,
/// reader efficiency, and modeled trainer throughput at the same time, on
/// the same data.
#[test]
fn recd_improves_every_pipeline_stage() {
    let spec = RmPreset::Rm1.spec().scaled_down(50);
    let baseline = PipelineRunner::new(spec.clone(), RecdConfig::baseline()).run(128);
    let recd = PipelineRunner::new(spec, RecdConfig::full()).run(128);
    let b = &baseline.report;
    let r = &recd.report;

    assert_eq!(b.samples, r.samples);
    assert!(r.scribe.compression_ratio > b.scribe.compression_ratio);
    assert!(r.storage.compression_ratio() > b.storage.compression_ratio());
    assert!(r.storage.stored_bytes < b.storage.stored_bytes);
    assert!(r.read_bytes < b.read_bytes);
    assert!(r.egress_bytes < b.egress_bytes);
    assert!(r.dedupe_factor > 1.2);
    assert!(r.trainer.throughput > b.trainer.throughput);
    assert!(r.trainer.breakdown.a2a_exposed <= b.trainer.breakdown.a2a_exposed);
    assert!(r.memory.max_utilization < b.memory.max_utilization);
}

/// The RM presets preserve the paper's cross-model ordering: RM1 (long
/// sequence features, transformer pooling, several IKJT groups) gains the
/// most from RecD.
#[test]
fn rm1_gains_the_most_like_the_paper() {
    let report = experiments::fig7(ExperimentScale::Smoke);
    assert_eq!(report.rows.len(), 3);
    let rm1 = &report.rows[0];
    let rm2 = &report.rows[1];
    let rm3 = &report.rows[2];
    assert_eq!(rm1.rm, "RM1");
    // Every RM improves on every axis.
    for row in &report.rows {
        assert!(row.trainer_speedup > 1.0, "{row:?}");
        assert!(row.reader_speedup > 1.0, "{row:?}");
        assert!(row.storage_improvement > 1.0, "{row:?}");
    }
    // RM1 leads on trainer throughput, as in Figure 7.
    assert!(rm1.trainer_speedup >= rm2.trainer_speedup);
    assert!(rm1.trainer_speedup >= rm3.trainer_speedup);
}

/// Figure 8 shape: at equal batch size, RecD's exposed all-to-all time is at
/// most the baseline's, and the total exposed iteration latency shrinks.
#[test]
fn iteration_breakdown_shrinks_at_equal_batch_size() {
    let report = experiments::fig8(ExperimentScale::Smoke);
    for row in &report.rows {
        let baseline_total: f64 = row.baseline.iter().sum();
        let recd_total: f64 = row.recd.iter().sum();
        assert!((baseline_total - 1.0).abs() < 1e-6, "baseline is the unit");
        assert!(recd_total < baseline_total, "{row:?}");
        assert!(
            row.recd[2] <= row.baseline[2] + 1e-9,
            "A2A must not grow: {row:?}"
        );
    }
}

/// Logical equivalence across the whole stack: a batch that traveled through
/// clustering, storage, the deduplicating reader, and the IKJT trainer path
/// predicts exactly what the baseline KJT path predicts.
#[test]
fn dedup_execution_is_logically_identical_end_to_end() {
    let artifacts =
        PipelineRunner::new(RmPreset::Rm2.spec().scaled_down(40), RecdConfig::full()).run(96);
    let batch = artifacts
        .batches
        .iter()
        .find(|b| !b.ikjts.is_empty())
        .expect("at least one deduplicated batch");
    let config = DlrmConfig::from_schema(&artifacts.schema, 16, PoolingKind::Attention);
    let mut model = Dlrm::new(config);
    let (dedup, _) = model.forward(batch, ExecutionMode::Deduplicated);
    let (baseline, _) = model.forward(batch, ExecutionMode::Baseline);
    for (a, b) in dedup.iter().zip(&baseline) {
        assert!((a - b).abs() < 1e-5);
    }
}

/// Reader-facing invariant: conversion and preprocessing never change the
/// logical content of a batch, whatever the table layout was.
#[test]
fn conversion_round_trips_after_clustering() {
    let generator = DatasetGenerator::new(WorkloadConfig::preset(WorkloadPreset::Tiny));
    let partition = generator.generate_partition();
    let clustered = cluster_by_session(&partition.samples);
    let batch = SampleBatch::new(clustered[..100.min(clustered.len())].to_vec());
    let converter = FeatureConverter::new(DataLoaderConfig::from_schema(&partition.schema));
    let converted = converter.convert(&batch).unwrap();
    for ikjt in &converted.ikjts {
        let expanded = ikjt.to_kjt().unwrap();
        for (feature, tensor) in expanded.iter() {
            for (row_idx, sample) in batch.iter().enumerate() {
                assert_eq!(
                    tensor.row(row_idx),
                    sample.sparse[feature.index()].as_slice()
                );
            }
        }
    }
}

/// The experiment harness produces a row for every table and figure.
#[test]
fn experiment_harness_covers_every_artifact() {
    let scale = ExperimentScale::Smoke;
    assert!(!experiments::characterization(scale)
        .report
        .per_feature
        .is_empty());
    assert!(experiments::scribe_compression(scale).session_ratio > 1.0);
    assert_eq!(experiments::table3(scale).rows.len(), 3);
    assert_eq!(experiments::dedupe_factor_sweep(scale).rows.len(), 9);
    let fig9 = experiments::fig9(scale);
    assert_eq!(fig9.rows.len(), 5);
    let table2 = experiments::table2(scale);
    assert_eq!(table2.rows.len(), 4);
    // RecD frees memory relative to the baseline row.
    assert!(table2.rows[1].max_memory_utilization < table2.rows[0].max_memory_utilization);
    let single = experiments::single_node(scale);
    assert!(single.speedup > 1.0);
    let fig10 = experiments::fig10(scale);
    for row in &fig10.rows {
        let recd_total = row.recd.0 + row.recd.1 + row.recd.2;
        assert!(
            recd_total < 1.0 + 1e-9,
            "reader CPU per sample must not grow: {row:?}"
        );
    }
    let table4 = experiments::table4(scale);
    assert_eq!(table4.rows.len(), 6);
}
