//! Reproduces the paper's §3 dataset characterization (Figures 3 and 4) on a
//! synthetic social-media-style workload: samples-per-session histograms and
//! per-feature exact/partial duplication, including the byte-weighted
//! totals.
//!
//! Run with: `cargo run --release --example dataset_characterization`

use recd::pipeline::experiments::{characterization, dedupe_factor_sweep, ExperimentScale};

fn main() {
    let exp = characterization(ExperimentScale::Smoke);
    print!("{}", exp.render_fig3());
    println!();
    print!("{}", exp.render_fig4());
    println!();

    // The analytical DedupeFactor model (§4.2) against measured batches.
    print!("{}", dedupe_factor_sweep(ExperimentScale::Smoke).render());
}
