//! Reproduces the paper's Figure 9 ablation (which RecD optimizations buy
//! which part of the trainer speedup on RM1) plus the Table 2 memory study
//! and the single-node result, at smoke scale so it finishes quickly.
//!
//! Run with: `cargo run --release --example ablation_study`

use recd::pipeline::experiments::{fig9, single_node, table2, ExperimentScale};

fn main() {
    let scale = ExperimentScale::Smoke;
    print!("{}", fig9(scale).render());
    println!();
    print!("{}", table2(scale).render());
    println!();
    print!("{}", single_node(scale).render());
}
