//! Streaming DPP service: land a clustered dataset, stream it through the
//! sharded, backpressured `recd-dpp` tier, watch the live metrics, and
//! verify the output equals the one-shot reader tier's.
//!
//! Run with: `cargo run --release --example streaming_service`

use recd::core::DataLoaderConfig;
use recd::datagen::{DatasetGenerator, WorkloadConfig, WorkloadPreset};
use recd::dpp::{DppConfig, DppService, ShardPolicy};
use recd::etl::cluster_by_session;
use recd::reader::{PreprocessPipeline, ReaderConfig, ReaderTier};
use recd::storage::{TableStore, TectonicSim};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Generate, cluster (O2), and land a dataset as DWRF files.
    let generator = DatasetGenerator::new(WorkloadConfig::preset(WorkloadPreset::Tiny));
    let partition = generator.generate_partition();
    let clustered = cluster_by_session(&partition.samples);
    let store = Arc::new(TableStore::new(TectonicSim::new(4), 32, 2));
    let (stored, _) = store.land_partition(&partition.schema, "demo", 0, &clustered);
    println!(
        "landed {} samples into {} files",
        clustered.len(),
        stored.files.len()
    );

    // 2. Start the streaming service: 2 fill workers decode files, a router
    //    shards rows file-round-robin across 2 lanes, 3 compute workers run
    //    IKJT conversion (O3) + deduplicated preprocessing (O4).
    let reader_config = ReaderConfig::new(64, DataLoaderConfig::from_schema(&partition.schema));
    let config = DppConfig::new(reader_config.clone())
        .with_policy(ShardPolicy::FileRoundRobin)
        .with_shards(2)
        .with_fill_workers(2)
        .with_compute_workers(3)
        .with_queue_depth(4);
    let mut handle = DppService::start(config, Arc::clone(&store), partition.schema.clone());

    // 3. Feed it. submit_file blocks when the bounded queues fill up — that
    //    is the service's backpressure reaching the producer.
    handle.submit_partition(&stored);
    let snapshot = handle.snapshot();
    println!(
        "live: {} files in, {} samples out, queues work={} out={}",
        snapshot.files_submitted,
        snapshot.samples_out,
        snapshot.work_queue_depth,
        snapshot.output_queue_depth
    );

    // 4. Graceful shutdown: drain everything, join every worker.
    let output = handle.finish()?;
    println!(
        "streamed {} batches / {} samples at {:.0} samples/s, dedup {:.2}x",
        output.report.batches,
        output.report.samples,
        output.report.samples_per_second,
        output.report.dedupe_factor
    );

    // 5. Determinism check: the one-shot reader tier over the same files
    //    produces the exact same deduplicated batches.
    let tier = ReaderTier::new(2, reader_config, PreprocessPipeline::new);
    let (outputs, _) = tier
        .run(&store, &partition.schema, &stored)
        .map_err(|e| -> Box<dyn std::error::Error> { e })?;
    let one_shot: Vec<_> = outputs.into_iter().flat_map(|o| o.batches).collect();
    // The service above used an empty preprocessing pipeline too (the
    // DppConfig default), so outputs must match batch for batch.
    assert_eq!(output.batches, one_shot);
    println!("streaming output is byte-identical to the one-shot reader tier");
    Ok(())
}
