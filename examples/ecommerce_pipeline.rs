//! An e-commerce-flavored end-to-end run of the full pipeline: shopping
//! sessions with cart-history features flow through Scribe, ETL, storage, the
//! reader tier, and the trainer cost model, once with the baseline pipeline
//! and once with every RecD optimization enabled.
//!
//! This mirrors the paper's motivating example (§1): features like "last N
//! items added to the cart" barely change across a shopping session, so
//! almost every byte the baseline pipeline stores, reads, and trains over is
//! a duplicate.
//!
//! Run with: `cargo run --release --example ecommerce_pipeline`

use recd::data::FeatureClass;
use recd::datagen::{DedupPolicy, FeatureProfile, WorkloadConfig, WorkloadPreset};
use recd::pipeline::{PipelineRunner, RecdConfig, RmPreset, RmSpec};
use recd::trainer::PoolingKind;

fn ecommerce_spec() -> RmSpec {
    // Shopping sessions: cart history, viewed-item history, wish-list ids
    // (user features, highly duplicated), plus candidate-item features.
    let workload = WorkloadConfig {
        profiles: vec![
            FeatureProfile {
                name_prefix: "cart_history".to_string(),
                count: 2,
                class: FeatureClass::User,
                avg_len: 80,
                stay_prob: 0.97,
                cardinality: 1 << 22,
                embedding_dim: 64,
                dedup: DedupPolicy::Grouped(1),
            },
            FeatureProfile {
                name_prefix: "view_history".to_string(),
                count: 2,
                class: FeatureClass::User,
                avg_len: 64,
                stay_prob: 0.9,
                cardinality: 1 << 22,
                embedding_dim: 64,
                dedup: DedupPolicy::Grouped(1),
            },
            FeatureProfile {
                name_prefix: "wishlist".to_string(),
                count: 8,
                class: FeatureClass::User,
                avg_len: 8,
                stay_prob: 0.95,
                cardinality: 1 << 20,
                embedding_dim: 64,
                dedup: DedupPolicy::Individual,
            },
            FeatureProfile::item(6),
        ],
        samples_per_session_mean: 12.0,
        ..WorkloadConfig::preset(WorkloadPreset::Small)
    };
    RmSpec {
        preset: RmPreset::Rm1,
        workload,
        embedding_dim: 64,
        sequence_pooling: PoolingKind::Attention,
        baseline_batch: 256,
        recd_batch: 512,
        gpus: 16,
        sessions: 150,
    }
}

fn main() {
    let spec = ecommerce_spec();
    println!("== e-commerce DLRM pipeline: baseline vs RecD ==\n");

    let baseline =
        PipelineRunner::new(spec.clone(), RecdConfig::baseline()).run(spec.baseline_batch);
    let recd = PipelineRunner::new(spec.clone(), RecdConfig::full()).run(spec.recd_batch);
    let b = &baseline.report;
    let r = &recd.report;

    println!("samples through the pipeline : {}", b.samples);
    println!(
        "scribe compression ratio     : {:.2}x -> {:.2}x",
        b.scribe.compression_ratio, r.scribe.compression_ratio
    );
    println!(
        "table compression ratio      : {:.2}x -> {:.2}x",
        b.storage.compression_ratio(),
        r.storage.compression_ratio()
    );
    println!(
        "reader bytes read / sent     : {:.1} / {:.1} MiB -> {:.1} / {:.1} MiB",
        b.read_bytes as f64 / 1048576.0,
        b.egress_bytes as f64 / 1048576.0,
        r.read_bytes as f64 / 1048576.0,
        r.egress_bytes as f64 / 1048576.0
    );
    println!(
        "per-reader throughput        : {:.0} -> {:.0} samples/cpu-s ({:.2}x)",
        b.reader.per_reader_throughput(),
        r.reader.per_reader_throughput(),
        r.reader.per_reader_throughput() / b.reader.per_reader_throughput().max(1e-9)
    );
    println!(
        "in-batch dedupe factor       : {:.2}x -> {:.2}x",
        b.dedupe_factor, r.dedupe_factor
    );
    println!(
        "modeled trainer throughput   : {:.0} -> {:.0} samples/s ({:.2}x, batch {} -> {})",
        b.trainer.throughput,
        r.trainer.throughput,
        r.trainer.throughput / b.trainer.throughput.max(1e-9),
        b.batch_size,
        r.batch_size
    );
    println!(
        "modeled peak GPU memory      : {:.1}% -> {:.1}% of the baseline-normalized capacity",
        b.memory.max_utilization * 100.0,
        r.memory.max_utilization * 100.0
    );
}
