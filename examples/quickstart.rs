//! Quickstart: build a small session-centric batch, deduplicate it into
//! IKJTs, inspect the savings, and verify the deduplicated trainer path
//! produces the same predictions as the baseline path.
//!
//! Run with: `cargo run --example quickstart`

use recd::core::{DataLoaderConfig, DedupeModel, FeatureConverter};
use recd::data::SampleBatch;
use recd::datagen::{DatasetGenerator, WorkloadConfig, WorkloadPreset};
use recd::etl::cluster_by_session;
use recd::trainer::{Dlrm, DlrmConfig, ExecutionMode, PoolingKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Generate a session-centric workload (the shape of a DLRM dataset).
    let generator = DatasetGenerator::new(WorkloadConfig::preset(WorkloadPreset::Tiny));
    let partition = generator.generate_partition();
    let schema = partition.schema.clone();
    println!(
        "generated {} samples from {} sessions ({:.1} samples/session)",
        partition.len(),
        partition.sessions,
        partition.samples_per_session()
    );

    // 2. Cluster by session (RecD O2) so duplicates become adjacent, then
    //    take one training batch.
    let clustered = cluster_by_session(&partition.samples);
    let batch = SampleBatch::new(clustered[..128.min(clustered.len())].to_vec());

    // 3. The analytical model says which features are worth deduplicating.
    let model = DedupeModel::new(batch.len(), batch.samples_per_session()?);
    for estimate in model.estimate_schema(&schema).iter().take(4) {
        println!(
            "  {:>12}: expected DedupeFactor {:.2} (worth it: {})",
            estimate.feature,
            estimate.dedupe_factor,
            estimate.is_worth_deduplicating()
        );
    }

    // 4. Convert the batch: declared dedup groups become IKJTs (RecD O3).
    let converter = FeatureConverter::new(DataLoaderConfig::from_schema(&schema));
    let converted = converter.convert(&batch)?;
    println!(
        "converted batch: {} logical sparse values stored as {} ({:.2}x dedupe factor)",
        converted.logical_sparse_values(),
        converted.stored_sparse_values(),
        converted.dedupe_factor()
    );

    // 5. Train-side parity: the deduplicated execution path (O5-O7) produces
    //    the same predictions as the baseline path.
    let mut dlrm = Dlrm::new(DlrmConfig::from_schema(&schema, 16, PoolingKind::Attention));
    let (dedup_preds, dedup_stats) = dlrm.forward(&converted, ExecutionMode::Deduplicated);
    let (base_preds, base_stats) = dlrm.forward(&converted, ExecutionMode::Baseline);
    let max_diff = dedup_preds
        .iter()
        .zip(&base_preds)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    println!(
        "forward parity: max |p_dedup - p_baseline| = {max_diff:.2e}; \
         EMB lookups {} -> {}, pooling FLOPs {} -> {}",
        base_stats.emb_lookups,
        dedup_stats.emb_lookups,
        base_stats.pooling_flops,
        dedup_stats.pooling_flops
    );
    Ok(())
}
