#!/usr/bin/env bash
# Regenerates BENCH_pipeline.json: runs the convert-path criterion benches
# (the offline criterion shim prints one mean per benchmark) and parses the
# output into a JSON snapshot, so the repo's performance trajectory has a
# commit-anchored record. Run from anywhere inside the repo:
#
#   scripts/bench_snapshot.sh
#
# The snapshot includes derived speedups for the columnar-vs-rowwise pairs
# the README's Performance section quotes. Override the output path with
# BENCH_SNAPSHOT_OUT (the regression gate writes fresh snapshots to a temp
# file this way). The script fails loudly — nonzero exit, message on stderr —
# when the bench binaries are missing or produce no parseable timings, so a
# broken bench run can never silently write an empty snapshot.
set -euo pipefail
cd "$(dirname "$0")/.."

out=${BENCH_SNAPSHOT_OUT:-BENCH_pipeline.json}
raw=$(mktemp)
bench_log=$(mktemp)
trap 'rm -f "$raw" "$bench_log"' EXIT

if ! command -v cargo >/dev/null 2>&1; then
  echo "bench_snapshot: cargo not found on PATH" >&2
  exit 1
fi

echo "running convert-path + fan-out + continuous-etl benches (this takes a minute)..." >&2
if ! cargo bench -p recd-bench --bench columnar --bench dedup_conversion --bench fanout --bench etl_stream >"$bench_log" 2>&1; then
  echo "bench_snapshot: cargo bench failed; last lines of its output:" >&2
  tail -20 "$bench_log" >&2
  exit 1
fi
grep 'time:' "$bench_log" > "$raw" || true
if ! [ -s "$raw" ]; then
  echo "bench_snapshot: no 'time:' lines in the bench output — bench binaries missing or output format changed" >&2
  tail -20 "$bench_log" >&2
  exit 1
fi

# Normalizes one shim output line to "name mean_ns [throughput...]".
normalize() {
  awk '{
    name = $1
    v = 0; u = ""; thrpt = ""
    for (i = 2; i <= NF; i++) {
      if ($i == "time:")  { v = $(i + 1); u = $(i + 2) }
      if ($i == "thrpt:") { thrpt = $(i + 1) " " $(i + 2) }
    }
    mult = 1
    if (u == "s")  mult = 1e9
    if (u == "ms") mult = 1e6
    if (u == "µs") mult = 1e3
    printf "%s %.1f %s\n", name, v * mult, thrpt
  }' "$raw"
}

# Prints the mean for one benchmark name; fails the script if it is absent,
# so a renamed bench cannot silently turn a derived ratio into zero.
mean_ns() {
  local got
  got=$(normalize | awk -v n="$1" '$1 == n { print $2 }' | head -1)
  if [ -z "$got" ]; then
    echo "bench_snapshot: benchmark '$1' missing from the bench output" >&2
    exit 1
  fi
  echo "$got"
}

ratio() {
  awk -v a="$1" -v b="$2" 'BEGIN { if (b > 0) printf "%.2f", a / b; else printf "0" }'
}

# Sustained end-to-end throughput of the continuous pipeline (tail -> ETL ->
# DPP -> trainer fan-out), lifted from the CLI's machine-parseable derived
# line. Guarded by the gate as higher-is-better.
echo "running continuous end-to-end throughput probe..." >&2
continuous_rps=$(cargo run --release -q -p recd-dpp --bin recd-dpp -- \
  --tail --trainers 2 --assign least --quiet 2>>"$bench_log" \
  | awk '/^derived continuous_records_per_second / { print $3 }')
if [ -z "$continuous_rps" ]; then
  echo "bench_snapshot: continuous probe printed no 'derived continuous_records_per_second' line" >&2
  tail -20 "$bench_log" >&2
  exit 1
fi

# Sustained end-to-end throughput with the control loop closed: the same
# continuous run, but with the PID backpressure controller engaged (--ctrl),
# lifted from the controller run's derived line. This is the figure the
# control loop must sustain — pacing is allowed to reshape *when* work
# happens, never to cost throughput. Guarded by the gate as higher-is-better.
echo "running controller-on pipeline throughput probe..." >&2
pipeline_rps=$(cargo run --release -q -p recd-dpp --bin recd-dpp -- \
  --tail --trainers 2 --assign least --ctrl --quiet 2>>"$bench_log" \
  | awk '/^derived pipeline_records_per_second / { print $3 }')
if [ -z "$pipeline_rps" ]; then
  echo "bench_snapshot: controller probe printed no 'derived pipeline_records_per_second' line" >&2
  tail -20 "$bench_log" >&2
  exit 1
fi

# Control-plane cost of the multi-host fleet: wall-clock ms spent inside the
# work-stealing shard rebalance across a seeded host-death + rejoin run,
# lifted from the CLI's machine-parseable derived line. Guarded by the gate
# as lower-is-better (the _ms suffix).
echo "running fleet rebalance probe..." >&2
fleet_rebalance_ms=$(cargo run --release -q -p recd-dpp --bin recd-dpp -- \
  --tail --hosts 3 --trainers 2 --chaos-seed 7 --quiet 2>>"$bench_log" \
  | awk '/^derived fleet_rebalance_ms / { print $3 }')
if [ -z "$fleet_rebalance_ms" ]; then
  echo "bench_snapshot: fleet probe printed no 'derived fleet_rebalance_ms' line" >&2
  tail -20 "$bench_log" >&2
  exit 1
fi

# Storage-realism figures: the blob-cache hit ratio with a working-set-sized
# cache (higher-is-better via the "ratio" suffix) and the mean per-op queue
# wait under hash placement on a frozen clock (lower-is-better via "_ms").
# Both come from deterministic experiment drivers — single-threaded, fixed
# access order, virtual-time wait accounting — so the gate can hold them
# tight.
echo "running storage load-balance + cache-sweep probes..." >&2
storage_derived=$(cargo run --release -q -p recd-bench --bin experiments -- \
  storage_balance cache_sweep --smoke 2>>"$bench_log")
storage_wait_ms=$(echo "$storage_derived" | awk '/^derived storage_load_balance_wait_ms / { print $3 }')
cache_hit_ratio=$(echo "$storage_derived" | awk '/^derived storage_cache_hit_ratio / { print $3 }')
if [ -z "$storage_wait_ms" ] || [ -z "$cache_hit_ratio" ]; then
  echo "bench_snapshot: storage experiments printed no derived storage_* lines" >&2
  tail -20 "$bench_log" >&2
  exit 1
fi

convert_row=$(mean_ns "datagen_convert_512/rowwise")
convert_col=$(mean_ns "datagen_convert_512/columnar")
fill_row=$(mean_ns "pipeline_fill_convert/rowwise")
fill_col=$(mean_ns "pipeline_fill_convert/columnar")
proc_row=$(mean_ns "preprocess/rowwise/baseline")
proc_flat=$(mean_ns "preprocess/flat/baseline")
proc_row_dedup=$(mean_ns "preprocess/rowwise/dedup")
proc_flat_dedup=$(mean_ns "preprocess/flat/dedup")
fanout_1=$(mean_ns "dpp_fanout/trainers_1")
fanout_4=$(mean_ns "dpp_fanout/trainers_4")
scaleup=$(mean_ns "dpp_scaleup/first_grow")
tail_to_trainer=$(mean_ns "etl_stream/tail_to_trainer")
seal_to_ingest=$(mean_ns "etl_stream/seal_to_ingest")

git_rev=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
git_dirty=false
if ! git diff --quiet HEAD -- 2>/dev/null; then
  git_dirty=true
fi

{
  echo '{'
  echo '  "schema_version": 1,'
  echo "  \"generated_utc\": \"$(date -u +%Y-%m-%dT%H:%M:%SZ)\","
  echo "  \"git_rev\": \"$git_rev\","
  echo "  \"git_dirty\": $git_dirty,"
  echo '  "command": "scripts/bench_snapshot.sh (cargo bench -p recd-bench --bench columnar --bench dedup_conversion --bench fanout --bench etl_stream)",'
  echo '  "derived": {'
  echo "    \"datagen_convert_512_speedup_columnar_vs_rowwise\": $(ratio "$convert_row" "$convert_col"),"
  echo "    \"pipeline_fill_convert_speedup_columnar_vs_rowwise\": $(ratio "$fill_row" "$fill_col"),"
  echo "    \"process_speedup_flat_vs_rowwise\": $(ratio "$proc_row" "$proc_flat"),"
  echo "    \"process_speedup_flat_vs_rowwise_dedup\": $(ratio "$proc_row_dedup" "$proc_flat_dedup"),"
  echo "    \"dpp_fanout_speedup_trainers4_vs_1\": $(ratio "$fanout_1" "$fanout_4"),"
  echo "    \"dpp_scaleup_first_grow_ms\": $(awk -v ns="$scaleup" 'BEGIN { printf "%.2f", ns / 1e6 }'),"
  echo "    \"etl_stream_tail_to_trainer_ms\": $(awk -v ns="$tail_to_trainer" 'BEGIN { printf "%.2f", ns / 1e6 }'),"
  echo "    \"etl_stream_seal_to_ingest_ms\": $(awk -v ns="$seal_to_ingest" 'BEGIN { printf "%.2f", ns / 1e6 }'),"
  echo "    \"continuous_records_per_second\": $continuous_rps,"
  echo "    \"pipeline_records_per_second\": $pipeline_rps,"
  echo "    \"fleet_rebalance_ms\": $fleet_rebalance_ms,"
  echo "    \"storage_load_balance_wait_ms\": $storage_wait_ms,"
  echo "    \"storage_cache_hit_ratio\": $cache_hit_ratio"
  echo '  },'
  echo '  "benches": ['
  normalize | awk '{
    line = sprintf("    {\"name\": \"%s\", \"mean_ns\": %s", $1, $2)
    if (NF >= 4) line = line sprintf(", \"throughput\": \"%s %s\"", $3, $4)
    print line "},"
  }' | sed '$ s/},$/}/'
  echo '  ]'
  echo '}'
} > "$out"

echo "wrote $out (rev $git_rev, dirty=$git_dirty)" >&2
