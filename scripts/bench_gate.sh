#!/usr/bin/env bash
# Regression gate over the derived bench metrics. Compares a fresh snapshot
# (generated via scripts/bench_snapshot.sh, or supplied with --fresh FILE)
# against the committed baseline BENCH_pipeline.json and exits nonzero when
# any derived metric regresses by more than the tolerance.
#
#   scripts/bench_gate.sh                 # run benches, gate vs BENCH_pipeline.json
#   scripts/bench_gate.sh --fresh f.json  # gate a pre-generated snapshot
#   scripts/bench_gate.sh --self-test     # no benches: verify the gate logic
#
# Direction awareness: keys containing "speedup", "per_second", or "ratio"
# are higher-is-better (a regression is a DROP), keys ending in "_ms" are
# lower-is-better (a regression is a RISE). Tolerance is relative; override the default 15%
# with BENCH_GATE_TOLERANCE (e.g. 0.25 in noisy CI), and the baseline path
# with BENCH_GATE_BASELINE.
set -euo pipefail
cd "$(dirname "$0")/.."

baseline=${BENCH_GATE_BASELINE:-BENCH_pipeline.json}
tolerance=${BENCH_GATE_TOLERANCE:-0.15}
fresh=""
self_test=false

while [ $# -gt 0 ]; do
  case "$1" in
    --fresh)
      [ $# -ge 2 ] || { echo "bench_gate: --fresh needs a file argument" >&2; exit 2; }
      fresh=$2; shift 2 ;;
    --self-test)
      self_test=true; shift ;;
    *)
      echo "bench_gate: unknown argument '$1'" >&2
      echo "usage: scripts/bench_gate.sh [--fresh FILE] [--self-test]" >&2
      exit 2 ;;
  esac
done

# Extracts the "derived" block of a snapshot as "key value" lines. The
# snapshots are machine-written with one key per line, so line-oriented
# parsing is reliable and keeps the gate dependency-free (no jq in the
# container).
derived_metrics() {
  awk '
    /"derived": \{/ { in_block = 1; next }
    in_block && /\}/ { exit }
    in_block {
      line = $0
      gsub(/[",:]/, " ", line)
      split(line, f, " ")
      if (f[1] != "") print f[1], f[2]
    }
  ' "$1"
}

# compare BASELINE_FILE FRESH_FILE -> prints a per-key report, returns 1 on
# any regression beyond the tolerance, 2 on a missing/empty derived block.
compare_snapshots() {
  local base_file=$1 fresh_file=$2
  local base_metrics fresh_metrics
  base_metrics=$(derived_metrics "$base_file")
  fresh_metrics=$(derived_metrics "$fresh_file")
  if [ -z "$base_metrics" ]; then
    echo "bench_gate: no derived metrics in baseline $base_file" >&2
    return 2
  fi
  if [ -z "$fresh_metrics" ]; then
    echo "bench_gate: no derived metrics in fresh snapshot $fresh_file" >&2
    return 2
  fi

  local failures=0 key base fresh_val
  printf '%-52s %10s %10s %8s  %s\n' "metric" "baseline" "fresh" "delta" "verdict"
  while read -r key base; do
    fresh_val=$(echo "$fresh_metrics" | awk -v k="$key" '$1 == k { print $2 }')
    if [ -z "$fresh_val" ]; then
      printf '%-52s %10s %10s %8s  %s\n' "$key" "$base" "-" "-" "MISSING"
      failures=$((failures + 1))
      continue
    fi
    # verdict: OK within tolerance, REGRESSED beyond it (direction-aware).
    local verdict delta
    read -r verdict delta < <(awk -v k="$key" -v b="$base" -v f="$fresh_val" -v tol="$tolerance" '
      BEGIN {
        delta = (b != 0) ? (f - b) / b : 0
        higher_better = (k ~ /speedup/ || k ~ /per_second/ || k ~ /ratio/) ? 1 : 0
        regressed = higher_better ? (delta < -tol) : (delta > tol)
        printf "%s %+.1f%%\n", regressed ? "REGRESSED" : "OK", delta * 100
      }')
    printf '%-52s %10s %10s %8s  %s\n' "$key" "$base" "$fresh_val" "$delta" "$verdict"
    [ "$verdict" = "REGRESSED" ] && failures=$((failures + 1))
  done <<< "$base_metrics"

  if [ "$failures" -gt 0 ]; then
    echo "bench_gate: $failures metric(s) regressed beyond ${tolerance} tolerance" >&2
    return 1
  fi
  echo "bench_gate: all metrics within ${tolerance} tolerance of $base_file"
  return 0
}

if $self_test; then
  # Exercise the gate logic without running any benches: the baseline must
  # pass against itself, and synthetic regressions in both directions
  # (speedup drop, latency rise) must fail.
  tmp=$(mktemp -d)
  trap 'rm -rf "$tmp"' EXIT

  echo "self-test 1/6: baseline vs itself must pass"
  compare_snapshots "$baseline" "$baseline" >/dev/null

  echo "self-test 2/6: a speedup drop beyond tolerance must fail"
  awk '{
    if ($0 ~ /process_speedup_flat_vs_rowwise"/) sub(/: [0-9.]+/, ": 0.10")
    print
  }' "$baseline" > "$tmp/speedup_drop.json"
  if compare_snapshots "$baseline" "$tmp/speedup_drop.json" >/dev/null 2>&1; then
    echo "bench_gate self-test FAILED: speedup drop not caught" >&2
    exit 1
  fi

  echo "self-test 3/6: a latency rise beyond tolerance must fail"
  awk '{
    if ($0 ~ /etl_stream_tail_to_trainer_ms"/) sub(/: [0-9.]+/, ": 999.0")
    print
  }' "$baseline" > "$tmp/latency_rise.json"
  if compare_snapshots "$baseline" "$tmp/latency_rise.json" >/dev/null 2>&1; then
    echo "bench_gate self-test FAILED: latency rise not caught" >&2
    exit 1
  fi

  echo "self-test 4/6: an end-to-end throughput drop beyond tolerance must fail"
  awk '{
    if ($0 ~ /continuous_records_per_second"/) sub(/: [0-9.]+/, ": 1.0")
    print
  }' "$baseline" > "$tmp/throughput_drop.json"
  if compare_snapshots "$baseline" "$tmp/throughput_drop.json" >/dev/null 2>&1; then
    echo "bench_gate self-test FAILED: throughput drop not caught" >&2
    exit 1
  fi

  echo "self-test 5/6: a cache hit-ratio drop beyond tolerance must fail"
  awk '{
    if ($0 ~ /storage_cache_hit_ratio"/) sub(/: [0-9.]+/, ": 0.01")
    print
  }' "$baseline" > "$tmp/ratio_drop.json"
  if compare_snapshots "$baseline" "$tmp/ratio_drop.json" >/dev/null 2>&1; then
    echo "bench_gate self-test FAILED: hit-ratio drop not caught" >&2
    exit 1
  fi

  echo "self-test 6/6: a controller-on pipeline throughput drop beyond tolerance must fail"
  awk '{
    if ($0 ~ /pipeline_records_per_second"/) sub(/: [0-9.]+/, ": 1.0")
    print
  }' "$baseline" > "$tmp/pipeline_drop.json"
  if compare_snapshots "$baseline" "$tmp/pipeline_drop.json" >/dev/null 2>&1; then
    echo "bench_gate self-test FAILED: controller-on throughput drop not caught" >&2
    exit 1
  fi

  echo "bench_gate self-test passed"
  exit 0
fi

if [ ! -f "$baseline" ]; then
  echo "bench_gate: baseline $baseline not found" >&2
  exit 2
fi

if [ -z "$fresh" ]; then
  fresh=$(mktemp --suffix=.json)
  trap 'rm -f "$fresh"' EXIT
  BENCH_SNAPSHOT_OUT=$fresh scripts/bench_snapshot.sh
elif [ ! -f "$fresh" ]; then
  echo "bench_gate: fresh snapshot $fresh not found" >&2
  exit 2
fi

compare_snapshots "$baseline" "$fresh"
